package core

import (
	"fmt"
	"sort"
	"time"

	"jaaru/internal/obs"
)

// Wire codec for distributed exploration (internal/dist). A choice prefix is
// a self-contained, serializable unit of work — the property the whole
// checker is built on — so the distributed protocol is small: claims (branch
// prefixes with exploration limits), per-lease stats deltas, and POR
// seen-set publication entries. The structs are JSON-marshalable (wire
// codec v1, the frozen fallback) and carry a binary codec v2 (wirev2.go)
// that internal/dist negotiates per connection.
//
// The commit protocol is designed so that lease expiry and idempotent
// re-execution are exact:
//
//   - A worker never commits per scenario; it commits *deltas* — the
//     difference between the lease's cumulative WireStats now and at its
//     previous commit (DiffWireStats). Absorption is seq-gated: the
//     coordinator folds a delta into the merged aggregate only when the
//     commit's sequence number advances the lease's, so a retried or
//     duplicated delivery is acknowledged without being applied twice.
//     Summed over the absorbed deltas this reconstructs the cumulative
//     stats exactly: counts diff and re-sum; maxima (FpointsPre, MaxRF,
//     obs peaks) and the Truncated flag ship cumulatively and re-join
//     idempotently; keyed findings (bugs, flagged loads, perf issues) ship
//     their count growth with the current canonical representative, whose
//     within-worker updates follow the same semilattice join the merge
//     applies, so joining every delta's representative equals joining the
//     final cumulative one.
//   - Every non-final commit carries residual WireClaims: the chooser state
//     right after advancing past the last committed scenario, plus any
//     still-untouched claims of the lease's batch. Committed deltas plus a
//     full exploration of the residuals (minus donated splits, which travel
//     in the same atomic commit) cover the original claims exactly once.
//   - On lease expiry the coordinator keeps the already-absorbed deltas and
//     requeues the last residuals; work after the last commit was never
//     committed, so its re-execution by the next claimant neither loses nor
//     double-counts anything.
//
// POR clamps interact with residuals subtly but safely: when porPruneSweep
// clamps a fail decision (limit 2 -> 1) it applies the published delta to
// the worker's local stats, and the next commit ships both the lowered limit
// and the applied delta together, atomically. A claimant of the residual
// therefore never re-applies a committed clamp; clamps applied after the
// last commit die with the lease and are re-derived by the claimant.

// WirePoint is one recorded nondeterministic decision in wire form.
type WirePoint struct {
	Kind string `json:"kind"` // "fail" | "rf" | "evict"
	N    int    `json:"n"`
	Idx  int    `json:"idx"`
}

// WireMemo is a failure-decision POR memo in wire form: the canonical
// fingerprint of the crash state at the point, plus the prefix cost
// (steps and cleared canonical counters) of reaching it from scenario start.
// Memos are an optimization — a claim without them is explored physically
// with identical results — so decoders tolerate their absence.
type WireMemo struct {
	FP    uint64  `json:"fp"`
	Steps int64   `json:"steps"`
	Vec   []int64 `json:"vec,omitempty"`
}

// WireClaim is a unit of leased work: a choice prefix with per-point
// exploration limits. Limits == nil means a frozen prefix (every point fixed
// at its recorded option — the shape of donated splits); a residual claim
// carries Idx < Limits[i] <= N at points whose siblings remain unexplored.
type WireClaim struct {
	Points []WirePoint `json:"points,omitempty"`
	Limits []int       `json:"limits,omitempty"`
	Memos  []*WireMemo `json:"memos,omitempty"`
}

func kindName(k choiceKind) string { return k.String() }

func kindFromName(s string) (choiceKind, bool) {
	switch s {
	case "fail":
		return chooseFail, true
	case "rf":
		return chooseReadFrom, true
	case "evict":
		return chooseEvict, true
	}
	return 0, false
}

func encodePoints(pts []choicePoint) []WirePoint {
	if len(pts) == 0 {
		return nil
	}
	out := make([]WirePoint, len(pts))
	for i, p := range pts {
		out[i] = WirePoint{Kind: kindName(p.kind), N: p.n, Idx: p.idx}
	}
	return out
}

func compilePoints(wps []WirePoint) ([]choicePoint, error) {
	if len(wps) == 0 {
		return nil, nil
	}
	out := make([]choicePoint, len(wps))
	for i, wp := range wps {
		k, ok := kindFromName(wp.Kind)
		if !ok {
			return nil, fmt.Errorf("point %d: unknown kind %q", i, wp.Kind)
		}
		if wp.N <= 0 || wp.Idx < 0 || wp.Idx >= wp.N {
			return nil, fmt.Errorf("point %d: idx %d out of range [0,%d)", i, wp.Idx, wp.N)
		}
		out[i] = choicePoint{kind: k, n: wp.N, idx: wp.Idx}
	}
	return out, nil
}

// encodeClaim serializes a (points, limits, memos) chooser claim.
func encodeClaim(pts []choicePoint, limits []int, memos []*failMemo) WireClaim {
	w := WireClaim{Points: encodePoints(pts)}
	if limits != nil {
		w.Limits = append([]int(nil), limits...)
	}
	for _, m := range memos {
		if m == nil {
			continue
		}
		w.Memos = make([]*WireMemo, len(memos))
		for i, mm := range memos {
			if mm == nil {
				continue
			}
			wm := &WireMemo{FP: mm.fp, Steps: mm.steps}
			if vec := vecToSlice(mm.vec); !allZero(vec) {
				wm.Vec = vec
			}
			w.Memos[i] = wm
		}
		break
	}
	return w
}

// encodeFrozenClaim serializes a donated branch prefix (every point frozen).
func encodeFrozenClaim(pts []choicePoint) WireClaim {
	return WireClaim{Points: encodePoints(pts)}
}

// compile validates the claim and lowers it to chooser form.
func (w WireClaim) compile() (pts []choicePoint, limits []int, memos []*failMemo, err error) {
	pts, err = compilePoints(w.Points)
	if err != nil {
		return nil, nil, nil, err
	}
	if w.Limits != nil {
		if len(w.Limits) != len(w.Points) {
			return nil, nil, nil, fmt.Errorf("claim has %d limits for %d points", len(w.Limits), len(w.Points))
		}
		limits = append([]int(nil), w.Limits...)
		for i, lim := range limits {
			if lim <= pts[i].idx || lim > pts[i].n {
				return nil, nil, nil, fmt.Errorf("point %d: limit %d out of range (%d,%d]", i, lim, pts[i].idx, pts[i].n)
			}
		}
	}
	if w.Memos != nil {
		if len(w.Memos) != len(w.Points) {
			return nil, nil, nil, fmt.Errorf("claim has %d memos for %d points", len(w.Memos), len(w.Points))
		}
		memos = make([]*failMemo, len(w.Memos))
		for i, wm := range w.Memos {
			if wm == nil {
				continue
			}
			if pts[i].kind != chooseFail {
				return nil, nil, nil, fmt.Errorf("point %d: memo on non-fail point", i)
			}
			m := &failMemo{fp: wm.FP, steps: wm.Steps}
			if wm.Vec != nil {
				vec, ok := vecFromSlice(wm.Vec)
				if !ok {
					return nil, nil, nil, fmt.Errorf("point %d: memo vec has %d counters", i, len(wm.Vec))
				}
				m.vec = vec
			}
			memos[i] = m
		}
	}
	return pts, limits, memos, nil
}

// Validate reports whether the claim is well-formed (decodable).
func (w WireClaim) Validate() error {
	_, _, _, err := w.compile()
	return err
}

// WireBug is a BugReport in wire form, including the replay vector and trace
// so the coordinator's merged result supports Replay/Witness/Minimize.
type WireBug struct {
	Type      int         `json:"type"`
	Message   string      `json:"message"`
	Execution int         `json:"execution"`
	Scenario  int         `json:"scenario"`
	Count     int         `json:"count"`
	Choices   string      `json:"choices"`
	Trace     []TraceOp   `json:"trace,omitempty"`
	Replay    []WirePoint `json:"replay,omitempty"`
}

// WireObs is one collector shard in wire form: dense counter and peak
// vectors (index = obs.Counter / obs.Peak), plus the shard's latency
// histograms in sparse form.
type WireObs struct {
	Counters []int64    `json:"counters,omitempty"`
	Peaks    []int64    `json:"peaks,omitempty"`
	Hists    []WireHist `json:"hists,omitempty"`
}

// WireHist is one timer histogram in sparse wire form: only populated
// buckets ship, as ascending [bucket index, count] pairs against the fixed
// layout of obs.Histogram. The fold at the coordinator is bucket-wise
// addition; delta commits ship only the bucket growth since the lease's
// previous commit, and seq-gated absorption keeps duplicate deliveries
// from being added twice.
type WireHist struct {
	Timer   int        `json:"timer"`
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// encodeHists converts a shard's histogram snapshots to sparse wire form,
// skipping empty timers.
func encodeHists(v obs.HistVec) []WireHist {
	var out []WireHist
	for t := range v {
		s := v[t]
		if s.Count == 0 {
			continue
		}
		wh := WireHist{Timer: t, Count: s.Count, Sum: s.Sum}
		for i, n := range s.Counts {
			if n != 0 {
				wh.Buckets = append(wh.Buckets, [2]int64{int64(i), n})
			}
		}
		out = append(out, wh)
	}
	return out
}

// validate checks one wire histogram's shape: timer and bucket indexes in
// range, ascending buckets, positive per-bucket counts that sum to Count.
func (h *WireHist) validate() error {
	if h.Timer < 0 || h.Timer >= obs.NumTimers {
		return fmt.Errorf("hist timer %d out of range [0,%d)", h.Timer, obs.NumTimers)
	}
	if h.Count < 0 || h.Sum < 0 {
		return fmt.Errorf("hist %s: negative count/sum (%d/%d)", obs.Timer(h.Timer), h.Count, h.Sum)
	}
	prev, total := int64(-1), int64(0)
	for _, b := range h.Buckets {
		idx, n := b[0], b[1]
		if idx <= prev || idx >= int64(obs.NumHistBuckets) {
			return fmt.Errorf("hist %s: bucket index %d out of order or range", obs.Timer(h.Timer), idx)
		}
		if n <= 0 {
			return fmt.Errorf("hist %s: bucket %d has non-positive count %d", obs.Timer(h.Timer), idx, n)
		}
		prev, total = idx, total+n
	}
	if total != h.Count {
		return fmt.Errorf("hist %s: bucket counts sum to %d, want count %d", obs.Timer(h.Timer), total, h.Count)
	}
	return nil
}

// snapshot expands the sparse wire form back into a mergeable snapshot.
func (h *WireHist) snapshot() obs.HistSnapshot {
	s := obs.HistSnapshot{Count: h.Count, Sum: h.Sum}
	if n := len(h.Buckets); n > 0 {
		s.Counts = make([]int64, h.Buckets[n-1][0]+1)
		for _, b := range h.Buckets {
			s.Counts[b[0]] = b[1]
		}
	}
	return s
}

// WireStats is a batch of exploration stats: everything the coordinator's
// deterministic merge consumes. A worker exports its lease's *cumulative*
// stats (exportWireStats) and ships the *delta* against its previous commit
// (DiffWireStats); the coordinator absorbs each delta exactly once, gated
// by the commit sequence number, which is what makes retries and duplicate
// deliveries idempotent.
type WireStats struct {
	Scenarios  int         `json:"scenarios"`
	ExecsPost  int         `json:"execs_post"`
	FpointsPre int         `json:"fpoints_pre"`
	Steps      int64       `json:"steps"`
	MaxRF      int         `json:"max_rf"`
	NewPoints  [3]int      `json:"new_points"`
	Truncated  bool        `json:"truncated,omitempty"`
	Bugs       []WireBug   `json:"bugs,omitempty"`
	MultiRF    []MultiRF   `json:"multi_rf,omitempty"`
	PerfIssues []PerfIssue `json:"perf_issues,omitempty"`
	Obs        *WireObs    `json:"obs,omitempty"`
}

// Validate reports whether the stats are well-formed (mergeable): counts
// non-negative, bug replay vectors decodable, obs counter vector the right
// width. The coordinator calls it at commit ingest, so a version-skewed or
// buggy worker is rejected with a client error instead of its stats being
// silently dropped from the merged result at retire time.
func (ws *WireStats) Validate() error {
	if ws.Scenarios < 0 || ws.ExecsPost < 0 || ws.FpointsPre < 0 {
		return fmt.Errorf("negative counts (scenarios %d, execs %d, fpoints %d)",
			ws.Scenarios, ws.ExecsPost, ws.FpointsPre)
	}
	if _, err := compileStats(ws); err != nil {
		return err
	}
	if ws.Obs != nil {
		if _, ok := vecFromSlice(ws.Obs.Counters); !ok {
			var want obs.CounterVec
			return fmt.Errorf("obs counters: got %d values, want %d", len(ws.Obs.Counters), len(want))
		}
		for i := range ws.Obs.Hists {
			if err := ws.Obs.Hists[i].validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// BugKeys returns the canonical dedup key of every bug in the stats — the
// coordinator's cap accounting dedupes on these before counting.
func (ws *WireStats) BugKeys() []string {
	keys := make([]string, 0, len(ws.Bugs))
	for i := range ws.Bugs {
		b := BugReport{Type: BugType(ws.Bugs[i].Type), Message: ws.Bugs[i].Message}
		keys = append(keys, b.key())
	}
	return keys
}

func vecToSlice(v obs.CounterVec) []int64 {
	out := make([]int64, len(v))
	copy(out, v[:])
	return out
}

func vecFromSlice(s []int64) (obs.CounterVec, bool) {
	var v obs.CounterVec
	if len(s) != len(v) {
		return v, false
	}
	copy(v[:], s)
	return v, true
}

func allZero(s []int64) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// exportWireStats snapshots the checker's cumulative stats (and its
// observability shard, when attached) as a WireStats. Map-backed findings
// are emitted in sorted key order so payloads are deterministic.
func (c *Checker) exportWireStats() *WireStats {
	c.foldChooserStats()
	ws := &WireStats{
		Scenarios:  c.scenarios,
		ExecsPost:  c.execsPost,
		FpointsPre: c.fpointsPre,
		Steps:      c.totalSteps,
		MaxRF:      c.maxRF,
		NewPoints:  c.newPoints,
		Truncated:  c.truncated,
	}
	for _, b := range c.bugs {
		ws.Bugs = append(ws.Bugs, WireBug{
			Type:      int(b.Type),
			Message:   b.Message,
			Execution: b.Execution,
			Scenario:  b.Scenario,
			Count:     b.Count,
			Choices:   b.Choices,
			Trace:     b.Trace,
			Replay:    encodePoints(b.replay),
		})
	}
	for _, m := range c.multiRF {
		cm := *m
		cm.Values = append([]string(nil), m.Values...)
		ws.MultiRF = append(ws.MultiRF, cm)
	}
	sort.Slice(ws.MultiRF, func(i, j int) bool { return ws.MultiRF[i].Loc < ws.MultiRF[j].Loc })
	for _, p := range c.perfIssues {
		ws.PerfIssues = append(ws.PerfIssues, *p)
	}
	sort.Slice(ws.PerfIssues, func(i, j int) bool {
		a, b := &ws.PerfIssues[i], &ws.PerfIssues[j]
		if a.Loc != b.Loc {
			return a.Loc < b.Loc
		}
		return a.Kind < b.Kind
	})
	if c.col != nil {
		ws.Obs = &WireObs{
			Counters: vecToSlice(c.col.Counters()),
			Peaks:    c.col.PeakValues(),
			Hists:    encodeHists(c.col.HistSnapshots()),
		}
	}
	return ws
}

// compileStats lowers a WireStats into a mergeable stats value.
func compileStats(ws *WireStats) (*stats, error) {
	var s stats
	s.initStats()
	s.scenarios = ws.Scenarios
	s.execsPost = ws.ExecsPost
	s.fpointsPre = ws.FpointsPre
	s.totalSteps = ws.Steps
	s.maxRF = ws.MaxRF
	s.newPoints = ws.NewPoints
	s.truncated = ws.Truncated
	for i := range ws.Bugs {
		wb := &ws.Bugs[i]
		replay, err := compilePoints(wb.Replay)
		if err != nil {
			return nil, fmt.Errorf("bug %d replay: %v", i, err)
		}
		s.mergeBug(&BugReport{
			Type:      BugType(wb.Type),
			Message:   wb.Message,
			Execution: wb.Execution,
			Scenario:  wb.Scenario,
			Count:     wb.Count,
			Choices:   wb.Choices,
			Trace:     wb.Trace,
			replay:    replay,
		})
	}
	for i := range ws.MultiRF {
		m := ws.MultiRF[i]
		m.Values = append([]string(nil), ws.MultiRF[i].Values...)
		s.mergeMultiRF(m.Loc, &m)
	}
	for i := range ws.PerfIssues {
		p := ws.PerfIssues[i]
		key := perfKey(p.Kind, p.Loc)
		if ex, ok := s.perfIssues[key]; ok {
			ex.Count += p.Count
			if p.Line < ex.Line {
				ex.Line = p.Line
			}
		} else {
			s.perfIssues[key] = &p
		}
	}
	return &s, nil
}

// ---- Delta commits ----------------------------------------------------------

// DiffWireStats returns the delta between two cumulative snapshots of the
// same lease: what changed since prev (the previously committed snapshot;
// nil means "everything", the first commit's baseline). The delta is built
// so that absorbing every delta of a lease in sequence through the ordinary
// merge reproduces exactly the state absorbing the final cumulative
// snapshot once would have:
//
//   - Summed quantities (scenarios, executions, steps, new points, obs
//     counters, histogram buckets) ship as differences — valid because every
//     one of them is nondecreasing within a worker.
//   - Max-joined quantities (FpointsPre, MaxRF, obs peaks) and the OR-joined
//     Truncated flag ship cumulatively; re-joining them per delta is
//     idempotent.
//   - Keyed findings (bugs by type+message, flagged loads by location, perf
//     issues by kind+location) ship only when their count grew, carrying the
//     count growth plus the *current* canonical representative. The
//     within-worker record paths (recordBug, flagMultiRF, recordPerfIssue)
//     update representatives with the same semilattice join the merge
//     applies and only alongside a count increment, so joining each delta's
//     representative converges to the final cumulative representative.
func DiffWireStats(cur, prev *WireStats) *WireStats {
	if prev == nil {
		return cur
	}
	d := &WireStats{
		Scenarios:  cur.Scenarios - prev.Scenarios,
		ExecsPost:  cur.ExecsPost - prev.ExecsPost,
		FpointsPre: cur.FpointsPre,
		Steps:      cur.Steps - prev.Steps,
		MaxRF:      cur.MaxRF,
		Truncated:  cur.Truncated,
	}
	for k := range cur.NewPoints {
		d.NewPoints[k] = cur.NewPoints[k] - prev.NewPoints[k]
	}
	prevBugs := make(map[string]int, len(prev.Bugs))
	for i := range prev.Bugs {
		b := &prev.Bugs[i]
		prevBugs[fmt.Sprintf("%d|%s", b.Type, b.Message)] = b.Count
	}
	for i := range cur.Bugs {
		b := cur.Bugs[i]
		if grown := b.Count - prevBugs[fmt.Sprintf("%d|%s", b.Type, b.Message)]; grown > 0 {
			b.Count = grown
			d.Bugs = append(d.Bugs, b)
		}
	}
	prevMulti := make(map[string]int, len(prev.MultiRF))
	for i := range prev.MultiRF {
		prevMulti[prev.MultiRF[i].Loc] = prev.MultiRF[i].Count
	}
	for i := range cur.MultiRF {
		m := cur.MultiRF[i]
		if grown := m.Count - prevMulti[m.Loc]; grown > 0 {
			m.Count = grown
			m.Values = append([]string(nil), m.Values...)
			d.MultiRF = append(d.MultiRF, m)
		}
	}
	prevPerf := make(map[string]int, len(prev.PerfIssues))
	for i := range prev.PerfIssues {
		p := &prev.PerfIssues[i]
		prevPerf[perfKey(p.Kind, p.Loc)] = p.Count
	}
	for i := range cur.PerfIssues {
		p := cur.PerfIssues[i]
		if grown := p.Count - prevPerf[perfKey(p.Kind, p.Loc)]; grown > 0 {
			p.Count = grown
			d.PerfIssues = append(d.PerfIssues, p)
		}
	}
	if cur.Obs != nil {
		d.Obs = diffWireObs(cur.Obs, prev.Obs)
	}
	return d
}

// diffWireObs diffs two cumulative shard snapshots: counter and histogram
// growth ships as differences, peaks ship cumulatively (max-join).
func diffWireObs(cur, prev *WireObs) *WireObs {
	if prev == nil {
		return cur
	}
	out := &WireObs{
		Counters: make([]int64, len(cur.Counters)),
		Peaks:    append([]int64(nil), cur.Peaks...),
	}
	for i, v := range cur.Counters {
		if i < len(prev.Counters) {
			v -= prev.Counters[i]
		}
		out.Counters[i] = v
	}
	prevH := make(map[int]*WireHist, len(prev.Hists))
	for i := range prev.Hists {
		prevH[prev.Hists[i].Timer] = &prev.Hists[i]
	}
	for i := range cur.Hists {
		h := cur.Hists[i]
		p := prevH[h.Timer]
		if p == nil {
			h.Buckets = append([][2]int64(nil), h.Buckets...)
			out.Hists = append(out.Hists, h)
			continue
		}
		if h.Count == p.Count {
			continue // no new samples in this timer
		}
		dh := WireHist{Timer: h.Timer, Count: h.Count - p.Count, Sum: h.Sum - p.Sum}
		pb := make(map[int64]int64, len(p.Buckets))
		for _, b := range p.Buckets {
			pb[b[0]] = b[1]
		}
		for _, b := range h.Buckets {
			if n := b[1] - pb[b[0]]; n > 0 {
				dh.Buckets = append(dh.Buckets, [2]int64{b[0], n})
			}
		}
		out.Hists = append(out.Hists, dh)
	}
	return out
}

// ---- POR publication log ---------------------------------------------------

// WirePorBug is one distinct bug of a published subtree delta.
type WirePorBug struct {
	Type    int         `json:"type"`
	Message string      `json:"message"`
	Exec    int         `json:"exec"`
	Count   int         `json:"count"`
	Rel     string      `json:"rel"`
	Suffix  []WirePoint `json:"suffix,omitempty"`
	Trace   []TraceOp   `json:"trace,omitempty"`
}

// WirePorPerf / WirePorMulti carry a subtree's perf-issue and flagged-load
// deltas (count plus the owner's representative).
type WirePorPerf struct {
	Count int       `json:"count"`
	Issue PerfIssue `json:"issue"`
}

type WirePorMulti struct {
	Count int     `json:"count"`
	Multi MultiRF `json:"multi"`
}

// WirePorDelta is a published recovery-subtree record in wire form.
type WirePorDelta struct {
	Scenarios int            `json:"scenarios"`
	Execs     int            `json:"execs"`
	Steps     int64          `json:"steps"`
	MaxRF     int            `json:"max_rf"`
	MaxRel    int            `json:"max_rel"`
	NewPoints [3]int         `json:"new_points"`
	Replayed  int64          `json:"replayed"`
	Fresh     int64          `json:"fresh"`
	Vec       []int64        `json:"vec,omitempty"`
	Bugs      []WirePorBug   `json:"bugs,omitempty"`
	Perf      []WirePorPerf  `json:"perf,omitempty"`
	Multi     []WirePorMulti `json:"multi,omitempty"`
}

// WirePorEntry is one entry of the POR seen-set publication log.
type WirePorEntry struct {
	FP    uint64       `json:"fp"`
	Delta WirePorDelta `json:"delta"`
}

func encodePorDelta(d *porDelta) WirePorDelta {
	wd := WirePorDelta{
		Scenarios: d.scenarios,
		Execs:     d.execs,
		Steps:     d.steps,
		MaxRF:     d.maxRF,
		MaxRel:    d.maxRel,
		NewPoints: d.newPoints,
		Replayed:  d.replayed,
		Fresh:     d.fresh,
	}
	if vec := vecToSlice(d.vec); !allZero(vec) {
		wd.Vec = vec
	}
	for _, b := range d.bugs {
		wd.Bugs = append(wd.Bugs, WirePorBug{
			Type:    int(b.typ),
			Message: b.msg,
			Exec:    b.exec,
			Count:   b.count,
			Rel:     b.rel,
			Suffix:  encodePoints(b.suffix),
			Trace:   b.trace,
		})
	}
	for _, p := range d.perf {
		wd.Perf = append(wd.Perf, WirePorPerf{Count: p.count, Issue: p.issue})
	}
	for _, m := range d.multi {
		cm := m.multi
		cm.Values = append([]string(nil), m.multi.Values...)
		wd.Multi = append(wd.Multi, WirePorMulti{Count: m.count, Multi: cm})
	}
	return wd
}

func compilePorDelta(wd *WirePorDelta) (*porDelta, error) {
	d := &porDelta{
		scenarios: wd.Scenarios,
		execs:     wd.Execs,
		steps:     wd.Steps,
		maxRF:     wd.MaxRF,
		maxRel:    wd.MaxRel,
		newPoints: wd.NewPoints,
		replayed:  wd.Replayed,
		fresh:     wd.Fresh,
	}
	if wd.Vec != nil {
		vec, ok := vecFromSlice(wd.Vec)
		if !ok {
			return nil, fmt.Errorf("por delta vec has %d counters", len(wd.Vec))
		}
		d.vec = vec
	}
	for i := range wd.Bugs {
		wb := &wd.Bugs[i]
		suffix, err := compilePoints(wb.Suffix)
		if err != nil {
			return nil, fmt.Errorf("por bug %d suffix: %v", i, err)
		}
		d.bugs = append(d.bugs, porBug{
			typ:    BugType(wb.Type),
			msg:    wb.Message,
			exec:   wb.Exec,
			count:  wb.Count,
			rel:    wb.Rel,
			suffix: suffix,
			trace:  wb.Trace,
		})
	}
	for i := range wd.Perf {
		wp := wd.Perf[i]
		d.perf = append(d.perf, porPerfDelta{
			key:   perfKey(wp.Issue.Kind, wp.Issue.Loc),
			count: wp.Count,
			issue: wp.Issue,
		})
	}
	for i := range wd.Multi {
		wm := wd.Multi[i]
		cm := wm.Multi
		cm.Values = append([]string(nil), wm.Multi.Values...)
		d.multi = append(d.multi, porMultiDelta{key: cm.Loc, count: wm.Count, multi: cm})
	}
	return d, nil
}

// ---- Worker side: LeaseRunner ----------------------------------------------

// LeaseSink is the worker's view of the coordinator, implemented by
// internal/dist over HTTP (and by the in-process test harness directly).
// All three methods may reflect stale coordinator state — Hungry and Stopped
// are cooperative hints, and the exactness of the protocol rests entirely on
// Commit's atomicity at the coordinator.
type LeaseSink interface {
	// Hungry reports whether the coordinator wants donated splits.
	Hungry() bool
	// Stopped reports whether a global cap or stop request ended the run:
	// the lease's remainder is dead work and is discarded.
	Stopped() bool
	// Draining reports a local graceful-stop request (SIGTERM): the lease
	// is released — progress so far is committed and the unexplored
	// residual handed back for another claimant — so, unlike Stopped,
	// nothing is discarded.
	Draining() bool
	// Commit atomically publishes the lease's progress: donated splits, the
	// residual claims covering all work not yet committed (the current
	// claim's snapshot plus any untouched claims of the batch), and the
	// stats delta since the previous commit (DiffWireStats). final retires
	// the lease; a final commit with no residuals marks the batch fully
	// explored (or dead under Stopped), while a final commit with residuals
	// *releases* the lease, asking the coordinator to requeue the
	// remainder. A non-nil error abandons the lease (its uncommitted tail
	// is requeued by the coordinator's expiry sweep). Implementations may
	// pipeline non-final commits — RunLease never depends on a non-final
	// ack before exploring further — but a final Commit must not return
	// until the coordinator acknowledged it.
	Commit(splits []WireClaim, residuals []WireClaim, delta *WireStats, final bool) error
}

// LeaseRunner executes leases against a guest program: the worker-process
// analog of the in-process workerLoop. Each lease runs on a fresh private
// Checker; the POR seen-set mirror persists across leases and syncs with the
// coordinator's publication log through DrainPor/AbsorbPor.
type LeaseRunner struct {
	prog Program
	opts Options
	seen *porSeen
	// commitEvery bounds scenarios between non-final commits (default 16;
	// lower it for tighter lease-expiry windows, at more RPC traffic).
	commitEvery int
}

// NewLeaseRunner prepares a runner for prog. Worker-irrelevant options are
// normalized away exactly as newWorker does for in-process workers.
func NewLeaseRunner(prog Program, opts Options) *LeaseRunner {
	o := opts.withDefaults()
	o.Workers = 1
	o.EventTrace = nil
	lr := &LeaseRunner{prog: prog, opts: o, commitEvery: 16}
	if o.POR > 0 {
		lr.seen = newPorSeen()
	}
	return lr
}

// SetCommitEvery overrides the scenarios-per-commit cadence (min 1).
func (lr *LeaseRunner) SetCommitEvery(n int) {
	if n >= 1 {
		lr.commitEvery = n
	}
}

// PorVersion returns the local publication-log length — the cursor DrainPor
// advances past.
func (lr *LeaseRunner) PorVersion() int {
	if lr.seen == nil {
		return 0
	}
	return lr.seen.logLen()
}

// DrainPor returns locally published POR entries at log positions >= from.
func (lr *LeaseRunner) DrainPor(from int) []WirePorEntry {
	if lr.seen == nil {
		return nil
	}
	fps, deltas := lr.seen.entriesSince(from)
	out := make([]WirePorEntry, 0, len(fps))
	for i, fp := range fps {
		out = append(out, WirePorEntry{FP: fp, Delta: encodePorDelta(deltas[i])})
	}
	return out
}

// AbsorbPor installs coordinator-published POR entries into the local mirror
// (first publisher wins, so re-deliveries are no-ops).
func (lr *LeaseRunner) AbsorbPor(entries []WirePorEntry) error {
	if lr.seen == nil {
		return nil
	}
	for i := range entries {
		d, err := compilePorDelta(&entries[i].Delta)
		if err != nil {
			return err
		}
		lr.seen.publish(entries[i].FP, d)
	}
	return nil
}

// RunLease explores a batch of claimed subtrees to completion on one
// private Checker, committing progress through the sink as seq-ordered
// deltas. It mirrors the in-process workerLoop — which likewise reuses one
// checker across claimed branches, re-seeding the chooser per branch — with
// the frontier and caps replaced by the coordinator behind the sink.
func (lr *LeaseRunner) RunLease(claims []WireClaim, sink LeaseSink) error {
	type compiledClaim struct {
		pts    []choicePoint
		limits []int
		memos  []*failMemo
	}
	comp := make([]compiledClaim, len(claims))
	for i := range claims {
		pts, limits, memos, err := claims[i].compile()
		if err != nil {
			return err
		}
		comp[i] = compiledClaim{pts, limits, memos}
	}
	c := New(lr.prog, lr.opts)
	if lr.seen != nil {
		c.porSeenSet = lr.seen
	}
	// Every commit ships the delta against the previously committed
	// cumulative snapshot; the first commit's baseline is empty.
	var prevStats *WireStats
	commit := func(splits, residuals []WireClaim, final bool) error {
		cur := c.exportWireStats()
		if err := sink.Commit(splits, residuals, DiffWireStats(cur, prevStats), final); err != nil {
			return err
		}
		prevStats = cur
		return nil
	}
	sinceCommit := 0
	for ci := range comp {
		cl := comp[ci]
		pending := claims[ci+1:] // untouched claims, owed back in residuals
		c.chooser.seedClaim(cl.pts, cl.limits, cl.memos)
		for claimDone := false; !claimDone; {
			if sink.Stopped() {
				c.porAbandon()
				return commit(nil, nil, true)
			}
			if sink.Draining() {
				// Graceful drain: release the lease instead of discarding its
				// remainder. The residual snapshot plus the untouched claims
				// cover exactly the unexplored work, so committing them final
				// hands the batch back to the coordinator's frontier
				// immediately — no TTL expiry needed (and none may ever come
				// when leases are configured not to expire).
				c.porAbandon()
				rp, rl, rm := c.chooser.claimSnapshot()
				return commit(nil, append([]WireClaim{encodeClaim(rp, rl, rm)}, pending...), true)
			}
			c.scenarios++
			if !c.runScenarioGuarded(cl.pts) {
				// Engine panic: this claim's subtree is unreliable.
				// recordEngineBug marked the stats truncated; drop the claim's
				// remainder (requeueing it would crash-loop every future
				// claimant) and move on to the untouched rest of the batch,
				// exactly as exploreBranch returns the in-process worker to
				// its loop.
				break
			}
			var splits []WireClaim
			if sink.Hungry() {
				// One donation round per scenario: Hungry is a stale hint
				// refreshed by the commit below, unlike the in-process loop
				// which can re-consult the live frontier.
				bs := c.chooser.splitOff()
				if len(bs) > 0 {
					c.porCancelBelow(len(bs[0].points))
					for _, b := range bs {
						splits = append(splits, encodeFrozenClaim(b.points))
					}
				}
			}
			claimDone = !c.chooser.advance()
			if claimDone {
				c.porFlush()
				if ci == len(comp)-1 {
					return commit(splits, nil, true)
				}
			}
			sinceCommit++
			if len(splits) > 0 || sinceCommit >= lr.commitEvery {
				sinceCommit = 0
				var residuals []WireClaim
				if !claimDone {
					rp, rl, rm := c.chooser.claimSnapshot()
					residuals = []WireClaim{encodeClaim(rp, rl, rm)}
				}
				residuals = append(residuals, pending...)
				if err := commit(splits, residuals, false); err != nil {
					c.porAbandon()
					return err
				}
			}
		}
	}
	// Reached only when the batch ended without a terminal commit inside the
	// loop: the last claim hit an engine panic (or the batch was empty).
	// Retire the lease so the coordinator's result reports the truncation.
	return commit(nil, nil, true)
}

// ---- Coordinator side: MergeAcc --------------------------------------------

// MergeAcc accumulates committed WireStats deltas into one deterministic
// Result — the coordinator side of distributed exploration. It reuses the
// exact stats.merge the in-process parallel driver uses, so a complete
// distributed run is bit-identical to the serial reference by the same
// argument: every operation is order-insensitive, and buildResult's
// canonical sorts finish the job.
type MergeAcc struct {
	ck    *Checker
	start time.Time
	// col is the single persistent observability shard every absorbed
	// delta's counters fold into (lazily created; nil when not observing).
	// One shard instead of one per Absorb keeps delta commits from growing
	// the registry's shard list without bound.
	col *obs.Collector
}

// NewMergeAcc prepares an accumulator for prog. Set opts.Observe to collect
// merged Metrics from the workers' shipped shards.
func NewMergeAcc(prog Program, opts Options) *MergeAcc {
	o := opts.withDefaults()
	return &MergeAcc{ck: New(prog, o), start: time.Now()}
}

// Options returns the accumulator's normalized options (the job's canonical
// configuration, shipped to workers verbatim).
func (a *MergeAcc) Options() Options { return a.ck.opts }

// Observability exposes the accumulator's metrics registry (nil unless
// Observe was set) so the coordinator can record lease/RPC traffic into the
// same snapshot the merged Metrics come from.
func (a *MergeAcc) Observability() *obs.Registry { return a.ck.reg }

// Absorb folds one committed stats delta into the aggregate. Call exactly
// once per applied commit (the coordinator gates calls on the lease's
// advancing sequence number, so retried deliveries are not double-counted).
func (a *MergeAcc) Absorb(ws *WireStats) error {
	s, err := compileStats(ws)
	if err != nil {
		return err
	}
	a.ck.stats.merge(s)
	if ws.Obs != nil && a.ck.reg != nil {
		vec, ok := vecFromSlice(ws.Obs.Counters)
		if !ok {
			return fmt.Errorf("obs counters: got %d values", len(ws.Obs.Counters))
		}
		if a.col == nil {
			a.col = a.ck.reg.NewShard()
		}
		a.col.AddCounters(vec)
		a.col.RaisePeaks(ws.Obs.Peaks)
		for i := range ws.Obs.Hists {
			h := &ws.Obs.Hists[i]
			if err := h.validate(); err != nil {
				return err
			}
			a.col.AddHist(obs.Timer(h.Timer), h.snapshot())
		}
	}
	return nil
}

// AbsorbPorEntry validates one publication-log entry (the coordinator stores
// entries in wire form; validation at ingest keeps the log well-formed).
func AbsorbPorEntry(e *WirePorEntry) error {
	_, err := compilePorDelta(&e.Delta)
	return err
}

// SetWorkers records the fleet size in the merged metrics (non-canonical,
// like the in-process driver's).
func (a *MergeAcc) SetWorkers(n int) {
	if a.ck.reg != nil {
		a.ck.reg.SetWorkers(n)
	}
}

// BuildResult assembles the merged Result. complete reports whether the
// frontier drained with no cap hit; worker-side truncation (engine errors)
// is already folded into the merged stats.
func (a *MergeAcc) BuildResult(complete bool) *Result {
	res := a.ck.buildResult(a.start, complete)
	// Same trim as runParallel: concurrent discoveries can overshoot MaxBugs
	// before the cooperative stop lands.
	if !a.ck.opts.StopAtFirstBug && len(res.Bugs) > a.ck.opts.MaxBugs {
		res.Bugs = res.Bugs[:a.ck.opts.MaxBugs]
	}
	return res
}
