package forensics

import (
	"encoding/json"
	"strings"
	"testing"
)

func minimalWitness() *Witness {
	return &Witness{
		Program:    "p",
		Bug:        Bug{Type: "assertion failure", Message: "m", Execution: 1, Choices: "fail@0"},
		Reproduced: true,
		Decisions:  []Decision{{Index: 0, Kind: "fail", Chosen: 1, Options: 2, Op: 3}},
		Ops: []Op{{Index: 0, Exec: 0, Thread: 0, Kind: "store", Addr: 0x1000, Size: 8, Val: 7,
			Transitions: []Transition{{Phase: "cache", Op: 0, Seq: 1}}}},
		Failures: []FailureMark{{Op: 3, Point: 0, Exec: 0}},
		Lines: []LineTimeline{{Exec: 0, Line: 0x1000,
			Events: []LineEvent{{Op: 0, Kind: "store", Seq: 1, Begin: 0, End: SeqInfinity}}}},
		Loads: []LoadResolution{{Op: 4, Exec: 1, Thread: 0, Addr: 0x1000, Loc: "x.go:1", Chosen: 0,
			Candidates: []StoreCandidate{{Exec: 0, Seq: 1, Val: 7, Admitted: true, Chosen: true, Reason: "r"}},
			Refined:    []RefineStep{{Exec: 0, Line: 0x1000, Kind: "raise-begin", At: 1, Begin: 1, End: SeqInfinity}}}},
	}
}

func marshal(t *testing.T, w *Witness) []byte {
	t.Helper()
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestValidateJSONAcceptsCompleteWitness(t *testing.T) {
	w := minimalWitness()
	if err := ValidateJSON(marshal(t, w)); err != nil {
		t.Errorf("complete witness rejected: %v", err)
	}
	// The optional minimization block validates too.
	w.Minimized = &Minimization{OriginalLen: 3, MinimizedLen: 1, Trials: 5,
		OriginalChoices: "fail@0 rf[1/2]", MinimizedChoices: "fail@0"}
	if err := ValidateJSON(marshal(t, w)); err != nil {
		t.Errorf("witness with minimization rejected: %v", err)
	}
	// Empty slices serialize as null (encoding/json) — still valid.
	if err := ValidateJSON(marshal(t, &Witness{Program: "p"})); err != nil {
		t.Errorf("empty witness rejected: %v", err)
	}
}

func TestValidateJSONRejectsViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(m map[string]any)
		wantSub string
	}{
		{"missing program", func(m map[string]any) { delete(m, "program") }, "program"},
		{"bad decision kind", func(m map[string]any) {
			m["decisions"].([]any)[0].(map[string]any)["kind"] = "flip"
		}, "kind"},
		{"bad transition phase", func(m map[string]any) {
			op := m["ops"].([]any)[0].(map[string]any)
			op["transitions"].([]any)[0].(map[string]any)["phase"] = "limbo"
		}, "phase"},
		{"bad line event kind", func(m map[string]any) {
			lt := m["lines"].([]any)[0].(map[string]any)
			lt["events"].([]any)[0].(map[string]any)["kind"] = "warp"
		}, "kind"},
		{"reproduced not bool", func(m map[string]any) { m["reproduced"] = "yes" }, "reproduced"},
		{"candidate missing reason", func(m map[string]any) {
			l := m["loads"].([]any)[0].(map[string]any)
			delete(l["candidates"].([]any)[0].(map[string]any), "reason")
		}, "reason"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m map[string]any
			if err := json.Unmarshal(marshal(t, minimalWitness()), &m); err != nil {
				t.Fatal(err)
			}
			tc.mutate(m)
			data, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			verr := ValidateJSON(data)
			if verr == nil {
				t.Fatal("mutated witness accepted")
			}
			if !strings.Contains(verr.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", verr, tc.wantSub)
			}
		})
	}
	if err := ValidateJSON([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestFormatSeq(t *testing.T) {
	if got := FormatSeq(42); got != "42" {
		t.Errorf("FormatSeq(42) = %q", got)
	}
	if got := FormatSeq(SeqInfinity); got != "∞" {
		t.Errorf("FormatSeq(∞) = %q", got)
	}
}
