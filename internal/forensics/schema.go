package forensics

// ValidateJSON checks a serialized witness against the documented schema
// (docs/ALGORITHM.md § "Witnesses and minimization") without external schema
// tooling: the JSON is decoded generically and every required field is
// checked for presence and JSON type. It is the check behind
// `jaaru-explain -validate` and the CI explain-smoke target.

import (
	"encoding/json"
	"fmt"
)

// ValidateJSON reports the first schema violation in a serialized witness,
// or nil if the document conforms.
func ValidateJSON(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("witness is not a JSON object: %w", err)
	}
	v := &validator{}
	v.str(doc, "program")
	v.boolean(doc, "reproduced")
	if bug := v.object(doc, "bug"); bug != nil {
		v.in("bug", func() {
			v.str(bug, "type")
			v.str(bug, "message")
			v.num(bug, "execution")
			v.str(bug, "choices")
		})
	}
	for i, d := range v.array(doc, "decisions") {
		v.elem("decisions", i, d, func(o map[string]any) {
			v.num(o, "index")
			v.enum(o, "kind", "fail", "rf", "evict")
			v.num(o, "chosen")
			v.num(o, "options")
			v.num(o, "op")
		})
	}
	for i, d := range v.array(doc, "ops") {
		v.elem("ops", i, d, func(o map[string]any) {
			v.num(o, "index")
			v.num(o, "exec")
			v.num(o, "thread")
			v.str(o, "kind")
			v.num(o, "addr")
			for j, t := range v.optArray(o, "transitions") {
				v.elem("transitions", j, t, func(tr map[string]any) {
					v.enum(tr, "phase", "cache", "flush-buffer", "persist-bound", "fence")
					v.num(tr, "op")
					v.num(tr, "seq")
				})
			}
		})
	}
	for i, d := range v.array(doc, "failures") {
		v.elem("failures", i, d, func(o map[string]any) {
			v.num(o, "op")
			v.num(o, "point")
			v.num(o, "exec")
		})
	}
	for i, d := range v.array(doc, "lines") {
		v.elem("lines", i, d, func(o map[string]any) {
			v.num(o, "exec")
			v.num(o, "line")
			for j, e := range v.array(o, "events") {
				v.elem("events", j, e, func(ev map[string]any) {
					v.num(ev, "op")
					v.enum(ev, "kind",
						"store", "clflush", "writeback", "refine-raise", "refine-lower")
					v.num(ev, "seq")
					v.num(ev, "begin")
					v.num(ev, "end")
				})
			}
		})
	}
	for i, d := range v.array(doc, "loads") {
		v.elem("loads", i, d, func(o map[string]any) {
			v.num(o, "op")
			v.num(o, "exec")
			v.num(o, "addr")
			v.str(o, "loc")
			v.num(o, "chosen")
			for j, cd := range v.array(o, "candidates") {
				v.elem("candidates", j, cd, func(cand map[string]any) {
					v.num(cand, "exec")
					v.num(cand, "seq")
					v.boolean(cand, "admitted")
					v.boolean(cand, "chosen")
					v.str(cand, "reason")
				})
			}
		})
	}
	if m, ok := doc["minimized"]; ok && m != nil {
		mo, ok := m.(map[string]any)
		if !ok {
			v.fail("minimized: not an object")
		} else {
			v.in("minimized", func() {
				v.num(mo, "original_len")
				v.num(mo, "minimized_len")
				v.num(mo, "trials")
				v.str(mo, "original_choices")
				v.str(mo, "minimized_choices")
			})
		}
	}
	return v.err
}

// validator accumulates the first error and a field-path prefix.
type validator struct {
	err    error
	prefix string
}

func (v *validator) fail(format string, args ...any) {
	if v.err == nil {
		v.err = fmt.Errorf("witness schema: %s%s", v.prefix, fmt.Sprintf(format, args...))
	}
}

func (v *validator) in(name string, fn func()) {
	old := v.prefix
	v.prefix = old + name + "."
	fn()
	v.prefix = old
}

func (v *validator) str(o map[string]any, key string) {
	if _, ok := o[key].(string); !ok {
		v.fail("%s: missing or not a string", key)
	}
}

func (v *validator) num(o map[string]any, key string) {
	if _, ok := o[key].(float64); !ok {
		v.fail("%s: missing or not a number", key)
	}
}

func (v *validator) boolean(o map[string]any, key string) {
	if _, ok := o[key].(bool); !ok {
		v.fail("%s: missing or not a bool", key)
	}
}

func (v *validator) enum(o map[string]any, key string, allowed ...string) {
	s, ok := o[key].(string)
	if !ok {
		v.fail("%s: missing or not a string", key)
		return
	}
	for _, a := range allowed {
		if s == a {
			return
		}
	}
	v.fail("%s: %q not in %v", key, s, allowed)
}

func (v *validator) object(o map[string]any, key string) map[string]any {
	m, ok := o[key].(map[string]any)
	if !ok {
		v.fail("%s: missing or not an object", key)
		return nil
	}
	return m
}

// array requires key to be present as an array (null is accepted as empty:
// encoding/json renders a nil slice as null).
func (v *validator) array(o map[string]any, key string) []any {
	raw, ok := o[key]
	if !ok {
		v.fail("%s: missing", key)
		return nil
	}
	if raw == nil {
		return nil
	}
	a, ok := raw.([]any)
	if !ok {
		v.fail("%s: not an array", key)
		return nil
	}
	return a
}

// optArray accepts a missing or null key as empty.
func (v *validator) optArray(o map[string]any, key string) []any {
	raw, ok := o[key]
	if !ok || raw == nil {
		return nil
	}
	a, ok := raw.([]any)
	if !ok {
		v.fail("%s: not an array", key)
		return nil
	}
	return a
}

func (v *validator) elem(name string, i int, d any, fn func(map[string]any)) {
	o, ok := d.(map[string]any)
	if !ok {
		v.fail("%s[%d]: not an object", name, i)
		return
	}
	v.in(fmt.Sprintf("%s[%d]", name, i), func() { fn(o) })
}
