// Package forensics defines the structured bug-witness model: everything the
// checker can explain about one failure scenario that manifested a bug. A
// Witness is assembled by re-running the scenario (internal/core.BuildWitness)
// with the forensics hooks armed — the TSO state-transition probe
// (internal/tso.Probe), the interval-provenance tracer
// (internal/pmem.Stack.SetIntervalTracer), and the per-operation recorder —
// and is the machine-readable counterpart of the paper's debugging support:
// "Jaaru prints out the load that can read from multiple stores, the source
// location of the load, each of the stores, their locations in the trace."
//
// The package holds only data: no checker imports, deterministic field
// ordering (slices, never maps), and JSON tags forming the documented witness
// schema (docs/ALGORITHM.md § "Witnesses and minimization"). Serial and
// parallel explorations of the same program produce byte-identical witness
// JSON, because the canonical bug representative they replay is identical.
package forensics

import "fmt"

// SeqInfinity is the JSON encoding of an unbounded interval end (pmem.SeqInf):
// the line may have been written back at any later time, or never.
const SeqInfinity = ^uint64(0)

// FormatSeq renders a sequence number, using ∞ for SeqInfinity — the same
// notation the pmem intervals print.
func FormatSeq(s uint64) string {
	if s == SeqInfinity {
		return "∞"
	}
	return fmt.Sprintf("%d", s)
}

// Witness is the structured explanation of one bug manifestation: the
// decision prefix that reaches it, the replayed operation trace annotated
// with TSO state transitions, the per-cache-line persistence timelines, and
// the read-from resolution of every post-failure load.
type Witness struct {
	// Program is the name of the checked program.
	Program string `json:"program"`
	// Bug identifies the manifestation this witness explains.
	Bug Bug `json:"bug"`
	// Reproduced reports whether the replay manifested the same bug key
	// again. False indicates a nondeterministic guest (or a mismatched
	// program/options pair); the remaining fields then describe the replay
	// that was actually observed.
	Reproduced bool `json:"reproduced"`
	// Decisions is the scenario's complete nondeterministic choice vector,
	// annotated with the operation that consumed each decision.
	Decisions []Decision `json:"decisions"`
	// Ops is the full replayed operation trace (never ring-truncated),
	// annotated with execution, thread, and TSO state transitions.
	Ops []Op `json:"ops"`
	// Failures marks where power failures were injected.
	Failures []FailureMark `json:"failures"`
	// Lines holds one persistence timeline per (execution, cache line)
	// touched by a flush effect or an interval refinement, sorted by
	// execution then line address.
	Lines []LineTimeline `json:"lines"`
	// Loads holds one resolution record per post-failure load byte that went
	// through constraint refinement (the ReadPreFailure path of Figure 9).
	Loads []LoadResolution `json:"loads"`
	// Minimized carries the delta-debugging result when minimization ran.
	Minimized *Minimization `json:"minimized,omitempty"`
}

// Bug identifies the manifestation a witness explains, mirroring the
// BugReport fields that key and describe it.
type Bug struct {
	Type      string `json:"type"`
	Message   string `json:"message"`
	Execution int    `json:"execution"`
	Choices   string `json:"choices"`
}

// Decision is one recorded nondeterministic choice. Kind is "fail" (inject a
// power failure at this eligible flush?), "rf" (which pre-failure store does
// this load byte read?), or "evict" (drain one store-buffer entry? — only
// under EvictExplore).
type Decision struct {
	// Index is the position in the choice vector.
	Index int `json:"index"`
	// Kind is "fail", "rf", or "evict".
	Kind string `json:"kind"`
	// Chosen is the option taken; Options is the number available.
	Chosen  int `json:"chosen"`
	Options int `json:"options"`
	// Op is the index of the operation that consumed this decision, -1 when
	// the decision was not observed during the replay (a seeded prefix
	// entry past the replay's end).
	Op int `json:"op"`
}

// Op is one operation of the replayed trace.
type Op struct {
	// Index is the operation's global index (Context.op order) across all
	// executions of the scenario. Untraced operations (Spawn, Join, a CAS
	// that did not write) leave gaps.
	Index int `json:"index"`
	// Exec is the execution (0 = pre-failure) that issued the operation.
	Exec int `json:"exec"`
	// Thread is the guest thread id.
	Thread int `json:"thread"`
	// Kind is the operation kind: alloc, store, load, clflush, clflushopt,
	// sfence, mfence, rmw.
	Kind string `json:"kind"`
	Addr uint64 `json:"addr"`
	Size int    `json:"size"`
	Val  uint64 `json:"val"`
	// Transitions records the operation's TSO state transitions: when its
	// store-buffer entry took effect and where it went.
	Transitions []Transition `json:"transitions,omitempty"`
}

// Transition is one TSO state transition of a buffered operation, captured
// by the tso.Probe when the entry leaves the store buffer or a buffered
// writeback is applied. Phase is:
//
//	"cache":        a store or clflush took effect in the cache at Seq
//	"flush-buffer": a clflushopt moved to the flush buffer with ordering
//	                bound Seq (not yet persisted)
//	"persist-bound": the buffered writeback was applied — the line's
//	                most-recent-writeback lower bound was raised to Seq
//	"fence":        an sfence took effect at Seq, draining the flush buffer
type Transition struct {
	Phase string `json:"phase"`
	// Op is the operation during which the transition happened (eviction can
	// be deferred past the issuing op under EvictAtFences/EvictExplore).
	Op  int    `json:"op"`
	Seq uint64 `json:"seq"`
}

// FailureMark records one injected power failure.
type FailureMark struct {
	// Op is the operation whose flush effect hosted the failure point (the
	// crash happens immediately before the flush takes effect), or the last
	// executed operation for an end-of-run failure.
	Op int `json:"op"`
	// Point is the eligible failure-point index within the pre-failure
	// execution, -1 for the mandatory end-of-run failure.
	Point int `json:"point"`
	// Exec is the execution that was cut short.
	Exec int `json:"exec"`
}

// LineTimeline is the persistence timeline of one cache line within one
// execution: how its most-recent-writeback interval [Begin, End) evolved
// across stores, clflush/clflushopt/sfence effects, and post-failure
// constraint refinements.
type LineTimeline struct {
	Exec int    `json:"exec"`
	Line uint64 `json:"line"`
	// Events are in scenario order.
	Events []LineEvent `json:"events"`
}

// LineEvent is one step of a line's persistence timeline. Kind is:
//
//	"store":        a store to the line took effect in the cache at Seq
//	"clflush":      a clflush effect pinned the writeback bound at Seq
//	"writeback":    a buffered clflushopt writeback applied with bound Seq
//	"refine-raise": a post-failure load observation raised Begin to Seq
//	"refine-lower": a post-failure load observation lowered End to Seq
type LineEvent struct {
	// Op is the operation during which the event happened.
	Op   int    `json:"op"`
	Kind string `json:"kind"`
	Seq  uint64 `json:"seq"`
	// Begin/End are the line's interval bounds after the event.
	Begin uint64 `json:"begin"`
	End   uint64 `json:"end"`
}

// LoadResolution explains one post-failure load byte resolved through
// constraint refinement: the candidate set enumerated by ReadPreFailure
// (Figure 9) with each pre-failure store's admission verdict, the candidate
// chosen, and the interval refinements the choice propagated (Figure 10).
type LoadResolution struct {
	// Op is the load operation's index; Addr the byte resolved (a multi-byte
	// load produces one resolution per refined byte).
	Op   int `json:"op"`
	Exec int `json:"exec"`
	// Thread is the loading guest thread.
	Thread int    `json:"thread"`
	Addr   uint64 `json:"addr"`
	// Loc is the guest source location of the load.
	Loc string `json:"loc"`
	// Chosen is the index into Candidates of the store the load read.
	Chosen int `json:"chosen"`
	// Candidates lists every pre-failure store considered, newest execution
	// first and newest store first within an execution — admitted or not.
	Candidates []StoreCandidate `json:"candidates"`
	// Refined lists the interval refinements applied after the choice.
	Refined []RefineStep `json:"refined,omitempty"`
}

// StoreCandidate is one pre-failure store considered for a load byte, with
// the constraint-refinement verdict that admitted or excluded it.
type StoreCandidate struct {
	// Exec is the execution that performed the store; -1 denotes the pool's
	// initial (zero) contents.
	Exec int    `json:"exec"`
	Seq  uint64 `json:"seq"`
	Val  uint64 `json:"val"`
	// Admitted reports whether the store was in the load's read-from set.
	Admitted bool `json:"admitted"`
	// Chosen marks the candidate the load actually read.
	Chosen bool `json:"chosen"`
	// Reason states the interval constraint that admitted or excluded the
	// store, in the vocabulary of Figure 9.
	Reason string `json:"reason"`
}

// RefineStep is one journaled interval mutation propagated by a read-from
// choice (Figure 10, UpdateRanges). Kind is "raise-begin" or "lower-end"; At
// is the sequence bound applied; Begin/End the interval after the step.
type RefineStep struct {
	Exec  int    `json:"exec"`
	Line  uint64 `json:"line"`
	Kind  string `json:"kind"`
	At    uint64 `json:"at"`
	Begin uint64 `json:"begin"`
	End   uint64 `json:"end"`
}

// Minimization summarizes a delta-debugging pass over the decision prefix.
type Minimization struct {
	// OriginalLen/MinimizedLen are choice-vector lengths; MinimizedLen is
	// never larger than OriginalLen (the minimizer only removes decisions).
	OriginalLen  int `json:"original_len"`
	MinimizedLen int `json:"minimized_len"`
	// Trials is the number of replays the minimizer ran.
	Trials int `json:"trials"`
	// OriginalChoices/MinimizedChoices are the human-readable decision
	// descriptions before and after.
	OriginalChoices  string `json:"original_choices"`
	MinimizedChoices string `json:"minimized_choices"`
}
