// Package jaaru is a Go reproduction of "Jaaru: Efficiently Model Checking
// Persistent Memory Programs" (Gorjiara, Xu, Demsky — ASPLOS 2021).
//
// Jaaru exhaustively explores the crash behaviours of persistent-memory
// (PM) programs. Guest programs issue stores, loads, cache-line flushes
// (clflush / clflushopt / clwb), fences (sfence / mfence) and locked RMW
// operations against a simulated byte-addressable PM pool; the checker
// fully simulates the x86-TSO persistency model (Px86sim) — per-thread
// store buffers with bypassing, flush buffers implementing clflushopt
// reordering — injects power failures immediately before flush operations,
// and runs the program's recovery routine against every distinct
// post-failure view.
//
// Key to its efficiency is constraint refinement: instead of eagerly
// enumerating every possible post-failure memory state (which grows
// exponentially with the number of unflushed stores, as in Yat), Jaaru
// tracks per-cache-line intervals bounding when each line was most recently
// written back and lazily enumerates only the pre-failure stores that
// post-failure loads actually read. Commit stores — the common PM pattern
// of guarding data behind a single persisted pointer or flag — then prune
// almost the entire state space.
//
// # Quickstart
//
// A program is a pre-failure function and a recovery function. The paper's
// Figure 2 example:
//
//	prog := jaaru.Program{
//		Name: "figure2",
//		Run: func(c *jaaru.Context) {
//			x, y := c.Root(), c.Root().Add(8) // same cache line
//			c.Store64(y, 1)
//			c.Store64(x, 2)
//			c.Clflush(x, 8)
//			c.Store64(y, 3)
//			c.Store64(x, 4)
//			c.Store64(y, 5)
//			c.Store64(x, 6)
//		},
//		Recover: func(c *jaaru.Context) {
//			x := c.Load64(c.Root())          // ∈ {0, 2, 4, 6}
//			y := c.Load64(c.Root().Add(8))   // refined by the value of x
//			_ = x + y
//		},
//	}
//	result := jaaru.Check(prog, jaaru.Options{})
//	for _, bug := range result.Bugs {
//		fmt.Println(bug)
//	}
//
// Bugs are visible manifestations: assertion failures (Context.Assert),
// illegal memory accesses (wild or null dereferences), infinite loops
// (step-budget exhaustion), and explicit Context.Bug reports. Enable
// Options.FlagMultiRF for the paper's debugging support: every load that
// could read from more than one pre-failure store is reported with its
// candidate stores — the signature of a missing flush.
package jaaru

import (
	"jaaru/internal/core"
	"jaaru/internal/forensics"
	"jaaru/internal/obs"
	"jaaru/internal/pmem"
	"jaaru/internal/report"
)

// Addr is a byte address in the simulated persistent-memory pool.
type Addr = pmem.Addr

// CacheLineSize is the flush granularity (64 bytes).
const CacheLineSize = pmem.CacheLineSize

// RootSize is the size of the always-allocated root area at Context.Root.
const RootSize = core.RootSize

// Context is the guest API: the operations a checked program may perform
// against simulated persistent memory. See the methods of
// internal/core.Context: Store8..Store64, Load8..Load64, StorePtr/LoadPtr,
// Clflush, Clflushopt, Clwb, Sfence, Mfence, Persist, CAS64, AtomicAdd64,
// AtomicExchange64, Alloc, AllocLine, Root, Spawn/Join, Assert, Bug, Fnv64.
type Context = core.Context

// Program is a guest program: a pre-failure Run and a post-failure Recover.
// A nil Recover disables failure injection (direct execution).
type Program = core.Program

// Options configures exploration: pool size, failure depth, eviction
// policy, step budget, multi-rf flagging, tracing, and parallelism
// (Options.Workers partitions the choice tree across worker checkers).
type Options = core.Options

// Result aggregates one exploration: scenario and execution counts, failure
// points, bugs, flagged loads, and wall-clock duration.
type Result = core.Result

// BugReport is one distinct bug manifestation.
type BugReport = core.BugReport

// BugType classifies manifestations.
type BugType = core.BugType

// Bug manifestation classes.
const (
	BugAssertion     = core.BugAssertion
	BugIllegalAccess = core.BugIllegalAccess
	BugInfiniteLoop  = core.BugInfiniteLoop
	BugExplicit      = core.BugExplicit
	BugEngine        = core.BugEngine
)

// MultiRF is a load flagged by the debugging support as able to read from
// more than one pre-failure store.
type MultiRF = core.MultiRF

// Eviction policies for the store buffer.
const (
	EvictEager    = core.EvictEager
	EvictAtFences = core.EvictAtFences
	EvictRandom   = core.EvictRandom
	EvictExplore  = core.EvictExplore
)

// Checker explores a program's failure behaviours.
type Checker = core.Checker

// NewChecker returns a checker for prog.
func NewChecker(prog Program, opts Options) *Checker { return core.New(prog, opts) }

// Check explores prog's failure behaviours to completion and returns the
// aggregated result.
func Check(prog Program, opts Options) *Result {
	return core.New(prog, opts).Run()
}

// Execute runs fn once with no failure injection — direct execution for
// testing guest code.
func Execute(name string, fn func(*Context), opts Options) *Result {
	return core.Execute(name, fn, opts)
}

// TraceOp is one recorded guest operation in a replayed trace.
type TraceOp = core.TraceOp

// Metrics is the observability layer's merged counter snapshot, attached
// to Result.Metrics when Options.Observe or Options.EventTrace is set.
// Metrics.Canonical isolates the partition-independent counters, which are
// identical between a full serial and a full parallel exploration.
type Metrics = obs.Metrics

// Observability is the live metrics registry of an observed Checker
// (Checker.Observability): Snapshot for point-in-time counters, Progress
// for a one-line live status while Run is in flight.
type Observability = obs.Registry

// PerfIssue is a redundant flush or fence reported by FlagPerfIssues.
type PerfIssue = core.PerfIssue

// Replay re-executes the exact failure scenario that manifested bug b —
// program and options must match the exploration that produced it — with
// full tracing, and returns the complete operation trace.
func Replay(prog Program, opts Options, b *BugReport) []TraceOp {
	return core.Replay(prog, opts, b)
}

// FormatWitness renders a human-readable witness for a bug: the scenario's
// decisions, the flagged multi-candidate loads, and the full replayed
// operation trace.
func FormatWitness(prog Program, opts Options, b *BugReport) string {
	return core.FormatWitness(prog, opts, b)
}

// Witness is the structured bug-forensics record: the scenario's recorded
// decisions, the TSO-annotated operation trace, per-cache-line persistence
// timelines, and the read-from resolution (with constraint-refinement steps)
// of every post-failure load. Obtain one with BuildWitness or the
// Result.Witness / BugReport.Witness accessors; render it with
// FormatWitnessText / MarshalWitnessJSON.
type Witness = forensics.Witness

// Minimization reports the outcome of delta-debugging a bug's choice prefix.
type Minimization = forensics.Minimization

// BuildWitness replays the failure scenario recorded in b — prog and opts
// must match the exploration that produced it — with the forensics hooks
// armed and returns the structured witness.
func BuildWitness(prog Program, opts Options, b *BugReport) *Witness {
	return core.BuildWitness(prog, opts, b)
}

// Minimize runs greedy delta debugging over b's recorded choice prefix and
// returns a copy of the report whose decision sequence is locally minimal
// while still reproducing a bug with the same (type, message) key. The
// minimized prefix is never longer than the original.
func Minimize(prog Program, opts Options, b *BugReport) (*BugReport, *Minimization) {
	return core.Minimize(prog, opts, b)
}

// FormatWitnessText renders a structured witness as the annotated
// human-readable report jaaru-explain prints.
func FormatWitnessText(w *Witness) string { return report.WitnessText(w) }

// MarshalWitnessJSON serializes a witness as indented JSON. Equal witnesses
// serialize byte-identically, so serial and parallel explorations of the
// same program produce the same bytes.
func MarshalWitnessJSON(w *Witness) ([]byte, error) { return report.WitnessJSON(w) }

// ValidateWitnessJSON checks serialized witness JSON against the documented
// schema (docs/ALGORITHM.md, "Witnesses and minimization").
func ValidateWitnessJSON(data []byte) error { return forensics.ValidateJSON(data) }
