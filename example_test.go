package jaaru_test

import (
	"fmt"

	"jaaru"
)

// The commit-store pattern: data is persisted before the pointer that
// publishes it, and recovery checks the pointer before touching the data.
// Jaaru proves every post-failure state safe.
func ExampleCheck() {
	prog := jaaru.Program{
		Name: "commit-store",
		Run: func(c *jaaru.Context) {
			data := c.AllocLine(8)
			c.Store64(data, 42)
			c.Clflush(data, 8)
			c.StorePtr(c.Root(), data) // commit store
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *jaaru.Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				c.Assert(c.Load64(p) == 42, "committed data lost")
			}
		},
	}
	res := jaaru.Check(prog, jaaru.Options{})
	fmt.Printf("failure points: %d, bugs: %d, complete: %v\n",
		res.FailurePoints, len(res.Bugs), res.Complete)
	// Output:
	// failure points: 3, bugs: 0, complete: true
}

// Omitting the data flush makes the commit store unsafe; the debugging
// support pinpoints the load that can observe more than one store.
func ExampleCheck_missingFlush() {
	prog := jaaru.Program{
		Name: "missing-flush",
		Run: func(c *jaaru.Context) {
			data := c.AllocLine(8)
			c.Store64(data, 42)
			// BUG: no flush of data before the commit store.
			c.StorePtr(c.Root(), data)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *jaaru.Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				c.Assert(c.Load64(p) == 42, "committed data lost")
			}
		},
	}
	res := jaaru.Check(prog, jaaru.Options{FlagMultiRF: true})
	// Two flagged loads: the commit pointer itself (for the failure point
	// before its clflush) and the unflushed data behind it.
	fmt.Printf("bugs: %d, flagged loads: %d\n", len(res.Bugs), len(res.MultiRF))
	// Output:
	// bugs: 1, flagged loads: 2
}

// Direct execution runs guest code once, with no failure injection —
// handy for unit-testing persistent data structures.
func ExampleExecute() {
	res := jaaru.Execute("direct", func(c *jaaru.Context) {
		a := c.Alloc(8, 8)
		c.Store64(a, 7)
		fmt.Println("read back:", c.Load64(a))
	}, jaaru.Options{})
	fmt.Println("bugs:", len(res.Bugs))
	// Output:
	// read back: 7
	// bugs: 0
}
