// Command jaaru-fuzz self-validates the model checker: it generates random
// persistent-memory programs (stores of every width, clflush, clflushopt,
// clwb, sfence, mfence, locked RMWs) and checks, for each, that Jaaru's
// lazy constraint-refinement exploration discovers exactly the same set of
// post-failure behaviours as a Yat-style eager enumeration of every legal
// memory image.
//
// Usage:
//
//	jaaru-fuzz [-seeds N] [-ops M] [-lines L] [-mixed] [-rmw] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"jaaru/internal/fuzz"
)

func main() {
	seeds := flag.Int("seeds", 100, "number of random programs to check")
	ops := flag.Int("ops", 14, "pre-failure operations per program")
	lines := flag.Int("lines", 2, "cache lines touched (eager cost is exponential per line)")
	mixed := flag.Bool("mixed", true, "include 1/2/4-byte stores")
	rmw := flag.Bool("rmw", true, "include locked RMW operations")
	verbose := flag.Bool("v", false, "print per-seed statistics")
	flag.Parse()

	var totalLazy, totalEager, failures int
	for seed := int64(0); seed < int64(*seeds); seed++ {
		st, err := fuzz.CrossCheck(fuzz.Config{
			Seed:       seed,
			Ops:        *ops,
			Lines:      *lines,
			MixedSizes: *mixed,
			RMW:        *rmw,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "MISMATCH: %v\n", err)
			failures++
			continue
		}
		totalLazy += st.LazyExecutions
		totalEager += st.EagerImages
		if *verbose {
			fmt.Printf("seed %3d: %3d distinct states, %4d lazy executions, %6d eager images\n",
				seed, st.States, st.LazyExecutions, st.EagerImages)
		}
	}
	fmt.Printf("\n%d/%d programs agree between lazy and eager exploration\n",
		*seeds-failures, *seeds)
	fmt.Printf("total executions: %d lazy vs %d eager images (%.1f× reduction)\n",
		totalLazy, totalEager, float64(totalEager)/float64(max(totalLazy, 1)))
	if failures > 0 {
		os.Exit(1)
	}
}
