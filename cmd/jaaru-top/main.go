// Command jaaru-top is the live fleet profiler: it polls a jaaru telemetry
// endpoint's GET /v1/status — the coordinator (jaaru-server), a standalone
// checker run (jaaru -listen), or a worker (jaaru-worker -listen) — and
// renders per-job progress plus phase-latency quantiles: top(1) for an
// exploration fleet.
//
// Usage:
//
//	jaaru-top -server http://host:8080            one snapshot, then exit
//	jaaru-top -server http://host:8080 -watch 2s  refresh until interrupted
//
// Each job row shows scenarios against the MaxScenarios goal, the live
// scenarios/sec rate, the ETA to the goal (an upper bound: complete
// explorations finish earlier), frontier depth, active leases, workers,
// distinct bugs, the lease protocol's wire bytes in each direction, and the
// average scenarios per absorbed delta commit (wire columns render "-" for
// in-process runs); the indented lines below a row are that job's per-phase
// latency distributions (p50/p99/max from the mergeable histograms the
// workers ship with every commit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"jaaru/internal/telemetry"
)

func main() {
	server := flag.String("server", "", "telemetry base URL (required), e.g. http://host:8080")
	watch := flag.Duration("watch", 0, "refresh at this interval instead of printing one snapshot")
	timeout := flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	flag.Parse()

	if *server == "" {
		fmt.Fprintln(os.Stderr, "jaaru-top: -server is required")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	for {
		st, err := fetchStatus(client, *server)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jaaru-top: %v\n", err)
			if *watch <= 0 {
				os.Exit(1)
			}
		} else {
			if *watch > 0 {
				fmt.Print("\033[H\033[2J") // clear screen between refreshes
			}
			fmt.Print(render(st))
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
	}
}

// fetchStatus polls one /v1/status snapshot.
func fetchStatus(c *http.Client, base string) (telemetry.Status, error) {
	var st telemetry.Status
	resp, err := c.Get(strings.TrimSuffix(base, "/") + "/v1/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /v1/status: HTTP %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("decode /v1/status: %v", err)
	}
	return st, nil
}

// render formats one status snapshot as the fleet table: one row per job,
// with that job's per-phase latency quantiles indented beneath it.
func render(st telemetry.Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  up %s\n", st.Service,
		time.Duration(st.UptimeSec*float64(time.Second)).Round(100*time.Millisecond))
	if len(st.Jobs) == 0 {
		b.WriteString("no jobs\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-6s %-12s %-9s %16s %9s %9s %9s %7s %8s %5s %13s %6s\n",
		"JOB", "BENCH", "STATE", "SCENARIOS", "RATE/S", "ETA", "FRONTIER", "LEASES", "WORKERS", "BUGS", "WIRE TX/RX", "BATCH")
	for _, j := range st.Jobs {
		scen := fmt.Sprintf("%d", j.Scenarios)
		if j.Goal > 0 {
			scen = fmt.Sprintf("%d/%d", j.Scenarios, j.Goal)
		}
		eta := "-"
		if j.ETASec > 0 {
			eta = time.Duration(j.ETASec * float64(time.Second)).Round(time.Second).String()
		}
		// Wire-level columns are zero for in-process runs; render them as "-"
		// so a standalone checker's table stays clean.
		wire, batch := "-", "-"
		if j.BytesTx > 0 || j.BytesRx > 0 {
			wire = humanBytes(j.BytesTx) + "/" + humanBytes(j.BytesRx)
		}
		if j.CommitBatch > 0 {
			batch = fmt.Sprintf("%d", j.CommitBatch)
		}
		fmt.Fprintf(&b, "%-6s %-12s %-9s %16s %9.1f %9s %9d %7d %8d %5d %13s %6s\n",
			j.ID, j.Bench, j.State, scen, j.Rate, eta,
			j.FrontierLen, j.ActiveLeases, j.Workers, j.Bugs, wire, batch)
		timers := make([]string, 0, len(j.Latency))
		for name := range j.Latency {
			timers = append(timers, name)
		}
		sort.Strings(timers)
		for _, name := range timers {
			q := j.Latency[name]
			fmt.Fprintf(&b, "       %-17s n=%-9d p50=%-11s p99=%-11s max=%s\n",
				name, q.Count, durNs(q.P50Ns), durNs(q.P99Ns), durNs(q.MaxNs))
		}
	}
	return b.String()
}

func durNs(ns int64) string { return time.Duration(ns).String() }

// humanBytes renders a byte count compactly (B/KB/MB/GB, one decimal).
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
