package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jaaru/internal/telemetry"
)

func fixedStatus() telemetry.Status {
	return telemetry.Status{
		Service:   "jaaru-coordinator",
		UptimeSec: 12.5,
		Jobs: []telemetry.JobStatus{
			{
				ID: "j1", Bench: "figure2", State: "running",
				Scenarios: 40, Goal: 100, Rate: 8.0, ETASec: 7.5,
				FrontierLen: 3, ActiveLeases: 2, Workers: 2, Bugs: 1,
				BytesTx: 3 << 20, BytesRx: 512, CommitBatch: 24,
				Latency: map[string]telemetry.Quantiles{
					"pre_failure": {Count: 41, MeanNs: 1500, P50Ns: 1024, P99Ns: 4096, MaxNs: 8192},
					"lease_claim": {Count: 5, MeanNs: 2_000_000, P50Ns: 2_000_000, P99Ns: 2_000_000, MaxNs: 2_000_000},
				},
			},
			{ID: "j2", Bench: "btree", State: "done", Scenarios: 17, Rate: 0},
		},
	}
}

func TestRenderTable(t *testing.T) {
	out := render(fixedStatus())
	for _, want := range []string{
		"jaaru-coordinator  up 12.5s",
		"JOB", "BENCH", "STATE", "SCENARIOS", "RATE/S", "ETA", "FRONTIER", "LEASES", "WORKERS", "BUGS", "WIRE TX/RX", "BATCH",
		"j1", "figure2", "running", "40/100", "8.0", "8s", // 7.5s rounds to 8s
		"3.0MB/512B", " 24",
		"j2", "btree", "done",
		"lease_claim", "pre_failure", "p50=1.024µs", "p99=4.096µs", "max=8.192µs", "n=41",
		"p50=2ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Latency lines are sorted by timer name: lease_claim before pre_failure.
	if strings.Index(out, "lease_claim") > strings.Index(out, "pre_failure") {
		t.Errorf("latency lines not sorted by timer name:\n%s", out)
	}
	// j2 has no goal and zero rate: the scenario cell is bare and ETA is "-".
	j2 := out[strings.Index(out, "j2"):]
	line := j2[:strings.IndexByte(j2, '\n')]
	if !strings.Contains(line, " 17 ") || !strings.Contains(line, " - ") {
		t.Errorf("done-job row want bare scenarios and '-' eta, got %q", line)
	}
}

func TestRenderNoJobs(t *testing.T) {
	out := render(telemetry.Status{Service: "jaaru", UptimeSec: 1})
	if !strings.Contains(out, "no jobs") {
		t.Errorf("empty status should render 'no jobs', got %q", out)
	}
}

func TestFetchStatus(t *testing.T) {
	srv := httptest.NewServer(telemetry.StatusHandler(fixedStatus))
	defer srv.Close()

	st, err := fetchStatus(srv.Client(), srv.URL+"/") // trailing slash is trimmed
	if err != nil {
		t.Fatalf("fetchStatus: %v", err)
	}
	if st.Service != "jaaru-coordinator" || len(st.Jobs) != 2 || st.Jobs[0].Latency["pre_failure"].Count != 41 {
		t.Errorf("fetchStatus round-trip mismatch: %+v", st)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer bad.Close()
	if _, err := fetchStatus(bad.Client(), bad.URL); err == nil {
		t.Error("fetchStatus should fail on HTTP 404")
	}
}
