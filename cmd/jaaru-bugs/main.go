// Command jaaru-bugs regenerates the paper's bug tables: Figure 12 (bugs
// found in PMDK), Figure 13 (bugs found in RECIPE), and the cause columns of
// Figures 15 and 16, by running the model checker over the seeded buggy
// variants of every benchmark.
//
// Usage:
//
//	jaaru-bugs [-suite pmdk|recipe|all] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"jaaru/internal/core"
	"jaaru/internal/pmdk"
	"jaaru/internal/recipe"
	"jaaru/internal/report"
)

func main() {
	suite := flag.String("suite", "all", "which suite to run: pmdk, recipe or all")
	verbose := flag.Bool("v", false, "print every bug manifestation and flagged load")
	flag.Parse()

	ok := true
	if *suite == "pmdk" || *suite == "all" {
		ok = runPMDK(*verbose) && ok
		fmt.Println()
	}
	if *suite == "recipe" || *suite == "all" {
		ok = runRECIPE(*verbose) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func symptom(res *core.Result) string {
	if len(res.Bugs) == 0 {
		return "NOT DETECTED"
	}
	b := res.Bugs[0]
	switch b.Type {
	case core.BugIllegalAccess:
		return "Illegal memory access / segmentation fault"
	case core.BugAssertion:
		return "Assertion failure"
	case core.BugInfiniteLoop:
		return "Getting stuck in an infinite loop"
	default:
		return b.Message
	}
}

func runPMDK(verbose bool) bool {
	tbl := report.New("Figure 12 — Bugs found in PMDK (★ = new bug)",
		"#", "Benchmark", "Paper symptom", "Detected", "ExecsToBug")
	tbl.AlignRight(0, 4)
	allFound := true
	var results []*core.Result
	for _, bc := range pmdk.BugCases() {
		res := core.New(bc.Program(), core.Options{
			FlagMultiRF:    true,
			StopAtFirstBug: true,
		}).Run()
		results = append(results, res)
		name := bc.Benchmark
		if bc.New {
			name += "★"
		}
		detected := symptom(res)
		if !res.Buggy() {
			allFound = false
		}
		tbl.Row(bc.ID, name, bc.Symptom, detected, res.Executions)
	}
	tbl.Footnote("paper: 7 bugs, 6 new; only bug #2 was previously reported (XFDetector)")
	tbl.Render(os.Stdout)
	if verbose {
		dumpDetails(results)
	}
	return allFound
}

func runRECIPE(verbose bool) bool {
	tbl := report.New("Figure 13/15 — Bugs found in RECIPE (★ = new bug)",
		"#", "Benchmark", "Type of bug", "Cause of bug (Fig. 15)", "Detected", "ExecsToBug")
	tbl.AlignRight(0, 5)
	allFound := true
	var results []*core.Result
	for _, bc := range recipe.BugCases() {
		res := core.New(bc.Program(), core.Options{
			FlagMultiRF:    true,
			MaxSteps:       20_000,
			StopAtFirstBug: true,
		}).Run()
		results = append(results, res)
		name := bc.Benchmark
		if bc.New {
			name += "★"
		}
		if !res.Buggy() {
			allFound = false
		}
		tbl.Row(bc.ID, name, bc.Type, bc.Cause, symptom(res), res.Executions)
	}
	tbl.Footnote("paper: 18 bugs, 12 new; Jaaru found bugs in every RECIPE program")
	tbl.Render(os.Stdout)
	if verbose {
		dumpDetails(results)
	}
	return allFound
}

func dumpDetails(results []*core.Result) {
	for _, res := range results {
		fmt.Printf("\n== %s\n", res.Program)
		for _, b := range res.Bugs {
			fmt.Printf("  bug: %v\n       choices: %s\n", b, b.Choices)
			// The reports came out of a Result, so the accessor never errors;
			// the minimized prefix is the short reproduction to hand a
			// developer (jaaru-explain prints the full forensics witness).
			if nb, m, err := b.Minimize(); err == nil && m.MinimizedLen < m.OriginalLen {
				fmt.Printf("       minimized: %d -> %d decisions (%d trials): %s\n",
					m.OriginalLen, m.MinimizedLen, m.Trials, orNone(nb.Choices))
			}
		}
		for _, m := range res.MultiRF {
			fmt.Printf("  multi-rf: %v\n", m)
		}
	}
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
