// Command jaaru-worker is one member of a distributed-exploration fleet: it
// claims choice-prefix leases from a jaaru-server coordinator, explores them
// with the ordinary checker, and streams back donated splits plus cumulative
// stats (internal/dist).
//
// Usage:
//
//	jaaru-worker -coordinator http://host:8080 [-name w1] [-commit-every N]
//	            [-codec v1|v2] [-listen ADDR]
//
// The wire codec is negotiated per connection by default: requests start in
// JSON advertising binary v2 via Accept, and the worker upgrades the moment
// the coordinator answers in v2 (downgrading transparently against an older
// coordinator). -codec v1 pins JSON; -codec v2 starts binary immediately.
//
// -listen serves the worker's own telemetry — GET /metrics and GET
// /v1/status with the lease-claim and commit RPC round-trip latency
// histograms — so a fleet dashboard can tell a slow coordinator link from a
// slow exploration (exploration counters travel in the commits and are
// served by the coordinator's endpoints).
//
// Benchmarks are resolved locally through internal/benchlist from the spec
// in each lease, so the worker binary must be built from the same tree as
// the server. The worker exits cleanly when the coordinator (started with
// -shutdown-when-done) releases the fleet, and exits with an error when the
// coordinator stays unreachable past its retry budget.
//
// SIGINT/SIGTERM drain gracefully: the current lease is released — the
// progress so far is committed and the unexplored remainder handed back to
// the coordinator, which requeues it for another claimant — no further
// leases are claimed, and the process exits. Nothing is lost and nothing
// has to wait for a lease TTL.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"jaaru/internal/benchlist"
	"jaaru/internal/core"
	"jaaru/internal/dist"
	"jaaru/internal/obs"
	"jaaru/internal/telemetry"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL (required), e.g. http://host:8080")
	name := flag.String("name", "", "worker name in coordinator accounting (default: hostname-pid)")
	commitEvery := flag.Int("commit-every", 0, "scenarios between commits (0: adapt to the observed scenario rate); lower = tighter re-execution window after a crash")
	codec := flag.String("codec", "", `wire codec: "" negotiates binary v2 with fallback (default), "v1" pins JSON, "v2" starts binary immediately`)
	listen := flag.String("listen", "", "serve worker telemetry (GET /metrics, GET /v1/status) on this address (:0 picks an ephemeral port)")
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "jaaru-worker: -coordinator is required")
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	var reg *obs.Registry
	if *listen != "" {
		reg = obs.NewRegistry(nil)
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "listening on %s: %v\n", *listen, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "jaaru-worker %s: telemetry on http://%s\n", *name, ln.Addr())
		go http.Serve(ln, telemetry.RegistryMux("jaaru-worker", reg, nil))
	}

	w, err := dist.NewWorker(dist.WorkerConfig{
		Name:        *name,
		BaseURL:     *coordinator,
		Resolve:     resolve,
		CommitEvery: *commitEvery,
		Codec:       *codec,
		Registry:    reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "jaaru-worker: draining (releasing current lease)")
		w.Drain()
	}()

	fmt.Fprintf(os.Stderr, "jaaru-worker %s: polling %s\n", *name, *coordinator)
	if err := w.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func resolve(spec dist.ProgSpec) (core.Program, error) {
	b := benchlist.Find(spec.Bench)
	if b == nil {
		return core.Program{}, fmt.Errorf("unknown benchmark %q", spec.Bench)
	}
	n := spec.N
	if n == 0 {
		n = 6
	}
	return b.Build(n, spec.Buggy), nil
}
