package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
)

// memlayoutBench is one benchmark row of the -memlayout report: wall-clock
// and allocator cost of one full serial exploration of a workload, plus the
// Result fields a layout change must not disturb.
type memlayoutBench struct {
	Name          string  `json:"name"`
	Executions    int     `json:"executions"`
	Scenarios     int     `json:"scenarios"`
	FailurePoints int     `json:"failure_points"`
	Bugs          int     `json:"bugs"`
	Steps         int64   `json:"steps"`
	WallNs        int64   `json:"wall_ns"`
	AllocsPerExec float64 `json:"allocs_per_exec"`
	BytesPerExec  float64 `json:"bytes_per_exec"`
	// Baseline* echo the same measurements from the -baseline report (the
	// pre-change run); AllocsReduction = 1 - new/old, Speedup = old/new.
	BaselineWallNs        int64   `json:"baseline_wall_ns,omitempty"`
	BaselineAllocsPerExec float64 `json:"baseline_allocs_per_exec,omitempty"`
	BaselineBytesPerExec  float64 `json:"baseline_bytes_per_exec,omitempty"`
	AllocsReduction       float64 `json:"allocs_reduction,omitempty"`
	Speedup               float64 `json:"speedup,omitempty"`
	// Match records the equivalence check against the baseline run: identical
	// executions, scenarios, failure points, steps, and bug count. Without a
	// baseline it reports the run completed (and is re-checked when the
	// report is later used as a baseline).
	Match bool `json:"match"`
	// Metrics is the observability snapshot of an instrumented extra run
	// (cross-checked against the timed runs), for CI tracking — the same
	// machine-readable counter block every other BENCH mode carries.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

type memlayoutReport struct {
	Scale      int              `json:"scale"`
	Reps       int              `json:"reps"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Note       string           `json:"note"`
	Benchmarks []memlayoutBench `json:"benchmarks"`
}

// measureAllocs runs one full serial exploration and returns its result plus
// the heap allocation count and bytes it performed (runtime.MemStats deltas,
// single-goroutine run so the deltas are attributable).
func measureAllocs(prog core.Program) (*core.Result, uint64, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := core.New(prog, core.Options{}).Run()
	runtime.ReadMemStats(&after)
	return res, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// runMemlayoutBench measures every -snapshots workload (the Figure 14 table
// plus the scaled commit-store program — the 7 perf workloads): best-of-reps
// wall time and allocations per fork-equivalent execution. With a baseline
// report (a run of the same harness before a layout change) it cross-checks
// the exploration for bit-identical Result counts and reports the reduction.
func runMemlayoutBench(path, baselinePath string, reps, scale int) {
	var base *memlayoutReport
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err == nil {
			base = &memlayoutReport{}
			err = json.Unmarshal(raw, base)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading baseline %s: %v\n", baselinePath, err)
			os.Exit(1)
		}
	}
	baseRow := func(name string) *memlayoutBench {
		if base == nil {
			return nil
		}
		for i := range base.Benchmarks {
			if base.Benchmarks[i].Name == name {
				return &base.Benchmarks[i]
			}
		}
		return nil
	}

	rep := memlayoutReport{
		Scale:      scale,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "allocs/bytes per exec are runtime.MemStats deltas over one full " +
			"serial exploration divided by fork-equivalent executions; wall_ns " +
			"is best of reps; match cross-checks Result counts against the baseline run",
	}
	fmt.Printf("Memory layout: serial exploration cost per workload (best of %d)\n", reps)
	fmt.Printf("%-12s  %7s  %10s  %12s  %10s  %8s  %6s\n",
		"Benchmark", "#JExec.", "Wall", "Allocs/exec", "B/exec", "ΔAllocs", "Match")
	fmt.Println("--------------------------------------------------------------------------")

	for _, prog := range snapshotWorkloads(scale) {
		var wall time.Duration
		var res *core.Result
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			res = core.New(prog, core.Options{}).Run()
			if d := time.Since(t0); r == 0 || d < wall {
				wall = d
			}
		}
		mres, mallocs, bytes := measureAllocs(prog)
		if !resultsEqual(res, mres) {
			fmt.Fprintf(os.Stderr, "%s: measured run diverged from timed run\n", prog.Name)
			os.Exit(1)
		}
		obsRes := core.New(prog, core.Options{Observe: true}).Run()
		if !resultsEqual(res, obsRes) {
			fmt.Fprintf(os.Stderr, "%s: instrumented run diverged from timed run\n", prog.Name)
			os.Exit(1)
		}
		execs := max(res.Executions, 1)
		b := memlayoutBench{
			Name:          trimName(prog.Name),
			Executions:    res.Executions,
			Scenarios:     res.Scenarios,
			FailurePoints: res.FailurePoints,
			Bugs:          len(res.Bugs),
			Steps:         res.Steps,
			WallNs:        wall.Nanoseconds(),
			AllocsPerExec: float64(mallocs) / float64(execs),
			BytesPerExec:  float64(bytes) / float64(execs),
			Match:         true,
			Metrics:       obsRes.Metrics,
		}
		delta := "-"
		if br := baseRow(b.Name); br != nil {
			b.BaselineWallNs = br.WallNs
			b.BaselineAllocsPerExec = br.AllocsPerExec
			b.BaselineBytesPerExec = br.BytesPerExec
			if br.AllocsPerExec > 0 {
				b.AllocsReduction = 1 - b.AllocsPerExec/br.AllocsPerExec
			}
			if b.WallNs > 0 {
				b.Speedup = float64(br.WallNs) / float64(b.WallNs)
			}
			b.Match = b.Executions == br.Executions &&
				b.Scenarios == br.Scenarios &&
				b.FailurePoints == br.FailurePoints &&
				b.Steps == br.Steps &&
				b.Bugs == br.Bugs
			delta = fmt.Sprintf("%+.1f%%", -100*b.AllocsReduction)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Printf("%-12s  %7d  %10s  %12.1f  %10.0f  %8s  %6v\n",
			b.Name, b.Executions, wall.Round(1e5), b.AllocsPerExec, b.BytesPerExec,
			delta, b.Match)
		if !b.Match {
			fmt.Fprintf(os.Stderr, "%s: exploration diverged from baseline\n", prog.Name)
			os.Exit(1)
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}
