package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/dist"
	"jaaru/internal/netsim"
	"jaaru/internal/obs"
	"jaaru/internal/recipe"
)

// distBench is one benchmark row of the -dist report.
type distBench struct {
	Name       string  `json:"name"`
	Executions int     `json:"executions"`
	Scenarios  int     `json:"scenarios"`
	SerialNs   int64   `json:"serial_ns"`
	DistNs     int64   `json:"dist_ns"`
	Speedup    float64 `json:"speedup"`
	// Coordinator-side protocol counts from the instrumented run: total
	// RPCs served, leases granted, leases expired, and expired subtrees
	// requeued. The instrumented run kills one worker mid-lease, so
	// requeues >= 1 demonstrates the expiry path on every row.
	RPCs          int64 `json:"rpcs"`
	LeasesGranted int64 `json:"leases_granted"`
	LeasesExpired int64 `json:"leases_expired"`
	LeaseRequeues int64 `json:"lease_requeues"`
	// RPCsPerScenario is RPCs normalized by the instrumented run's scenario
	// count: the protocol-overhead figure adaptive lease sizing and commit
	// pipelining exist to shrink, independent of workload size.
	RPCsPerScenario float64 `json:"rpcs_per_scenario"`
	// WireBytes is the netsim fabric's total byte count (both directions,
	// every peer) for the instrumented run — the codec-v2 footprint gauge.
	WireBytes int64 `json:"wire_bytes"`
	// Match records the distributed-equivalence check: the instrumented
	// coordinator-merged result (with the injected worker kill) was
	// bit-identical to the instrumented serial reference — Result fields,
	// bug reports, and every canonical observability counter.
	Match bool `json:"match"`
	// Metrics is the coordinator's merged observability snapshot of the
	// instrumented run. The timed reps above run uninstrumented and
	// fault-free; this extra pair only feeds Match and these fields.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

type distReport struct {
	Workers    int         `json:"workers"`
	Scale      int         `json:"scale"`
	Reps       int         `json:"reps"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Note       string      `json:"note"`
	Benchmarks []distBench `json:"benchmarks"`
}

// distRun explores one workload through a fresh in-process coordinator +
// worker fleet over the netsim fabric and returns the merged result plus the
// fabric's total wire bytes (both directions, all peers). When killOne is
// set, the first worker is killed mid-lease and the fleet only proceeds
// after its lease TTL expires, exercising the requeue path.
func distRun(bench string, resolver dist.Resolver, workers int, opts core.Options, killOne bool) (*core.Result, int64, error) {
	coord, err := dist.NewCoordinator(dist.Config{Resolve: resolver, ShutdownWhenDone: true})
	if err != nil {
		return nil, 0, err
	}
	fab := netsim.NewFabric(coord)
	rpc := func(method, path string, body, out any) error {
		payload, err := json.Marshal(body)
		if err != nil {
			return err
		}
		req, err := http.NewRequest(method, "http://coordinator"+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		resp, err := fab.Client("perf-client").Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}

	var job dist.JobResponse
	if err := rpc("POST", "/v1/jobs", dist.JobRequest{Spec: dist.ProgSpec{Bench: bench}, Opts: opts}, &job); err != nil {
		return nil, 0, err
	}

	mkWorker := func(name string, commitEvery int) (*dist.Worker, error) {
		return dist.NewWorker(dist.WorkerConfig{
			Name:       name,
			BaseURL:    "http://coordinator",
			Client:     fab.Client(name),
			Resolve:    resolver,
			MaxRetries: 2,
			Backoff:    time.Millisecond,
			// Cap idle-poll sleeps: over the in-process fabric the
			// coordinator's production RetryMs would dwarf the measured
			// exploration time with pure sleeping, and even a 1ms cap is a
			// visible shutdown-detection tail on millisecond-scale workloads.
			Sleep:       func(d time.Duration) { time.Sleep(min(d, 200*time.Microsecond)) },
			CommitEvery: commitEvery,
		})
	}

	first := 0
	if killOne && workers > 1 {
		// The doomed worker claims the root lease, survives the grant plus a
		// few commits, then its transport dies; its residual subtree is
		// requeued once the TTL (set by the caller's opts) expires. It
		// commits every scenario so the kill budget is spent mid-lease even
		// on workloads the adaptive cadence would retire in one commit.
		w, err := mkWorker("doomed", 1)
		if err != nil {
			return nil, 0, err
		}
		fab.KillAfter("doomed", 4)
		if err := w.Run(); err == nil {
			// The workload was small enough to finish within the kill budget;
			// the run is still valid, just without an expiry to exercise.
			first = workers // nothing left to do
		}
		ttl := time.Duration(opts.LeaseTTLMs) * time.Millisecond
		time.Sleep(ttl + 20*time.Millisecond)
	}

	errs := make(chan error, workers)
	live := 0
	for i := first; i < workers; i++ {
		// 0 = adapt the commit cadence to the observed scenario rate,
		// exactly what a production fleet runs with.
		w, err := mkWorker(fmt.Sprintf("w%d", i+1), 0)
		if err != nil {
			return nil, 0, err
		}
		live++
		go func() { errs <- w.Run() }()
	}
	for i := 0; i < live; i++ {
		if err := <-errs; err != nil {
			return nil, 0, err
		}
	}

	var st dist.JobStatus
	if err := rpc("GET", "/v1/jobs/"+job.ID, nil, &st); err != nil {
		return nil, 0, err
	}
	if st.State != dist.JobDone {
		return nil, 0, fmt.Errorf("job %s not done after fleet shutdown", job.ID)
	}
	return st.Result, fab.TotalBytes(), nil
}

// distMatch is the bit-identical cross-check between a serial reference and
// a coordinator-merged result (Duration and the partition-local bug Scenario
// index excepted, as in the in-process parallel check).
func distMatch(serial, got *core.Result) bool {
	if got.Scenarios != serial.Scenarios || got.Executions != serial.Executions ||
		got.FailurePoints != serial.FailurePoints || got.Steps != serial.Steps ||
		got.RFChoicePoints != serial.RFChoicePoints ||
		got.FailDecisionPoints != serial.FailDecisionPoints ||
		got.MaxRFCandidates != serial.MaxRFCandidates ||
		got.Complete != serial.Complete || len(got.Bugs) != len(serial.Bugs) {
		return false
	}
	for i := range serial.Bugs {
		s, g := serial.Bugs[i], got.Bugs[i]
		if g.Type != s.Type || g.Message != s.Message || g.Count != s.Count || g.Choices != s.Choices {
			return false
		}
	}
	if (serial.Metrics == nil) != (got.Metrics == nil) {
		return false
	}
	if serial.Metrics != nil && serial.Metrics.Canonical() != got.Metrics.Canonical() {
		return false
	}
	return true
}

// runDistBench measures every Figure 14 workload serially and through the
// distributed coordinator/worker path (in-process over the netsim fabric,
// best of reps), cross-checks an instrumented pair — with one worker killed
// mid-lease — for bit-identical results, and writes the JSON report with
// the coordinator's RPC and requeue counts.
func runDistBench(path string, workers, reps, scale int) {
	if workers < 2 {
		workers = 2
	}
	rep := distReport{
		Workers:    workers,
		Scale:      scale,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "dist runs in-process over the netsim fabric: speedup excludes real " +
			"network latency but includes the full wire codec, commit protocol, and " +
			"merge; the instrumented pair kills one worker mid-lease to exercise " +
			"TTL expiry and requeue",
	}
	progs := recipe.PerfWorkloads(scale)
	byName := make(map[string]core.Program, len(progs))
	for _, p := range progs {
		byName[p.Name] = p
	}
	resolver := func(spec dist.ProgSpec) (core.Program, error) {
		p, ok := byName[spec.Bench]
		if !ok {
			return core.Program{}, fmt.Errorf("unknown workload %q", spec.Bench)
		}
		return p, nil
	}

	fmt.Printf("Distributed exploration: serial vs %d workers over netsim (best of %d, %d CPU)\n",
		workers, reps, rep.NumCPU)
	fmt.Printf("%-12s  %7s  %10s  %10s  %8s  %5s  %6s  %9s  %8s  %6s\n",
		"Benchmark", "#JExec.", "Serial", "Dist", "Speedup", "RPCs", "RPC/Sc", "WireBytes", "Requeues", "Match")
	fmt.Println("---------------------------------------------------------------------------------------------")

	for _, prog := range progs {
		var serial, distT time.Duration
		var rs *core.Result
		plain := core.Options{HeartbeatMs: -1}
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			rs = core.New(prog, plain).Run()
			if d := time.Since(t0); r == 0 || d < serial {
				serial = d
			}
			t0 = time.Now()
			if _, _, err := distRun(prog.Name, resolver, workers, plain, false); err != nil {
				fmt.Fprintf(os.Stderr, "%s: distributed run: %v\n", prog.Name, err)
				os.Exit(1)
			}
			if d := time.Since(t0); r == 0 || d < distT {
				distT = d
			}
		}

		// Instrumented pair with an injected mid-lease worker kill: the
		// equivalence and protocol-counter source.
		obsOpts := core.Options{Observe: true, HeartbeatMs: -1, LeaseTTLMs: 100}
		obsSerial := core.New(prog, obsOpts).Run()
		obsDist, wireBytes, err := distRun(prog.Name, resolver, workers, obsOpts, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: instrumented distributed run: %v\n", prog.Name, err)
			os.Exit(1)
		}
		match := distMatch(obsSerial, obsDist)

		b := distBench{
			Name:       prog.Name,
			Executions: rs.Executions,
			Scenarios:  rs.Scenarios,
			SerialNs:   serial.Nanoseconds(),
			DistNs:     distT.Nanoseconds(),
			Speedup:    float64(serial.Nanoseconds()) / float64(max(distT.Nanoseconds(), 1)),
			WireBytes:  wireBytes,
			Match:      match,
			Metrics:    obsDist.Metrics,
		}
		if m := obsDist.Metrics; m != nil {
			b.RPCs = m.RPCs
			b.LeasesGranted = m.LeasesGranted
			b.LeasesExpired = m.LeasesExpired
			b.LeaseRequeues = m.LeaseRequeues
			b.RPCsPerScenario = float64(m.RPCs) / float64(max(obsDist.Scenarios, 1))
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Printf("%-12s  %7d  %10s  %10s  %7.1fx  %5d  %6.2f  %9d  %8d  %6v\n",
			trimName(b.Name), b.Executions, serial.Round(1e5), distT.Round(1e5),
			b.Speedup, b.RPCs, b.RPCsPerScenario, b.WireBytes, b.LeaseRequeues, match)
		if !match {
			fmt.Fprintf(os.Stderr, "%s: distributed exploration diverged from serial\n", prog.Name)
			os.Exit(1)
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}
