// Command jaaru-perf regenerates the paper's Figure 14: for each fixed
// RECIPE benchmark, the number of executions Jaaru explores (JExec.), the
// wall-clock exploration time (JTime), the number of failure injection
// points (FPoints), and the number of post-failure states an eager model
// checker such as Yat would have to explore — computed analytically with
// big-integer arithmetic, exactly as the paper did (Yat is not publicly
// available).
//
// With -parallel, it instead benchmarks the parallel exploration driver:
// every Figure 14 workload is explored serially and with -workers worker
// checkers, the results are cross-checked for equivalence (Result fields
// and the canonical observability counters of an instrumented pair), and
// the measurements — including each workload's machine-readable metrics
// block — are written as JSON (BENCH_parallel.json) for CI tracking.
//
// Usage:
//
//	jaaru-perf [-scale N]
//	jaaru-perf -parallel BENCH_parallel.json [-workers N] [-reps R] [-scale N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
	"jaaru/internal/recipe"
	"jaaru/internal/yat"
)

// parallelBench is one benchmark row of the -parallel report.
type parallelBench struct {
	Name       string  `json:"name"`
	Executions int     `json:"executions"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	ExecsPerS  float64 `json:"execs_per_sec"`
	// Match records the satellite equivalence check: the parallel run
	// produced the identical exploration (executions, scenarios, failure
	// points, bug count) as the serial reference, and an instrumented
	// serial/parallel pair agreed on every canonical observability counter.
	Match bool `json:"match"`
	// Metrics is the observability snapshot of the instrumented parallel
	// run — the machine-readable counter block for CI tracking. The timed
	// reps above run uninstrumented; this extra pair only feeds Match and
	// this field.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

type parallelReport struct {
	Workers    int             `json:"workers"`
	Scale      int             `json:"scale"`
	Reps       int             `json:"reps"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Note       string          `json:"note"`
	Benchmarks []parallelBench `json:"benchmarks"`
}

// runParallelBench measures every Figure 14 workload serially and with the
// requested worker count (best of reps), cross-checks equivalence, and
// writes the JSON report.
func runParallelBench(path string, workers, reps, scale int) {
	rep := parallelReport{
		Workers:    workers,
		Scale:      scale,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "speedup tracks min(workers, num_cpu); on a single-CPU host " +
			"workers time-slice one core and speedup ~1.0 measures driver overhead",
	}
	fmt.Printf("Parallel exploration: serial vs %d workers (best of %d, %d CPU)\n",
		workers, reps, rep.NumCPU)
	fmt.Printf("%-12s  %7s  %10s  %10s  %8s  %6s\n",
		"Benchmark", "#JExec.", "Serial", "Parallel", "Speedup", "Match")
	fmt.Println("------------------------------------------------------------------")

	for _, prog := range recipe.PerfWorkloads(scale) {
		var serial, par time.Duration
		var rs, rp *core.Result
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			rs = core.New(prog, core.Options{}).Run()
			if d := time.Since(t0); r == 0 || d < serial {
				serial = d
			}
			t0 = time.Now()
			rp = core.New(prog, core.Options{Workers: workers}).Run()
			if d := time.Since(t0); r == 0 || d < par {
				par = d
			}
		}
		obsSerial := core.New(prog, core.Options{Observe: true}).Run()
		obsPar := core.New(prog, core.Options{Workers: workers, Observe: true}).Run()
		match := rs.Executions == rp.Executions &&
			rs.Scenarios == rp.Scenarios &&
			rs.FailurePoints == rp.FailurePoints &&
			len(rs.Bugs) == len(rp.Bugs) &&
			obsSerial.Metrics.Canonical() == obsPar.Metrics.Canonical()
		b := parallelBench{
			Name:       trimName(prog.Name),
			Executions: rp.Executions,
			SerialNs:   serial.Nanoseconds(),
			ParallelNs: par.Nanoseconds(),
			Speedup:    float64(serial) / float64(par),
			ExecsPerS:  float64(rp.Executions) / par.Seconds(),
			Match:      match,
			Metrics:    obsPar.Metrics,
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Printf("%-12s  %7d  %10s  %10s  %7.2fx  %6v\n",
			b.Name, b.Executions, serial.Round(1e5), par.Round(1e5), b.Speedup, match)
		if !match {
			fmt.Fprintf(os.Stderr, "%s: parallel exploration diverged from serial\n", prog.Name)
			os.Exit(1)
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (1 = default table)")
	workers := flag.Int("workers", 4, "worker checkers for -parallel")
	reps := flag.Int("reps", 3, "measurement repetitions for -parallel (best is kept)")
	parallel := flag.String("parallel", "", "benchmark parallel exploration and write the JSON report to this file")
	flag.Parse()

	if *parallel != "" {
		runParallelBench(*parallel, *workers, *reps, *scale)
		return
	}

	fmt.Println("Figure 14 — Jaaru's state space reduction (fixed RECIPE variants)")
	fmt.Printf("%-12s  %7s  %10s  %8s  %8s  %14s\n",
		"Benchmark", "#JExec.", "JTime", "#FPoints", "Ex/FP", "#Yat Execs.")
	fmt.Println("------------------------------------------------------------------")

	for _, prog := range recipe.PerfWorkloads(*scale) {
		res := core.New(prog, core.Options{}).Run()
		if res.Buggy() {
			fmt.Fprintf(os.Stderr, "%s: unexpected bug: %v\n", prog.Name, res.Bugs[0])
			os.Exit(1)
		}
		count := yat.CountStates(prog, core.Options{})
		perFP := float64(res.Executions-1) / float64(max(res.FailurePoints, 1))
		fmt.Printf("%-12s  %7d  %10s  %8d  %8.2f  %14s\n",
			trimName(prog.Name), res.Executions, res.Duration.Round(1e6),
			res.FailurePoints, perFP, count.Sci())
	}
	fmt.Println()
	fmt.Println("Paper (for shape comparison): CCEH 891/14.51s/528/2.17e182,")
	fmt.Println("FAST_FAIR 170/1.48s/41/5.43e15, P-ART 174/1.86s/22/1.21e34,")
	fmt.Println("P-BwTree 71/0.79s/36/1.50e16, P-CLHT 25/1.59s/12/1.93e605,")
	fmt.Println("P-Masstree 24/0.17s/16/1.67e15.")
	fmt.Println("Executions per failure point should fall between ~1.5 and ~8;")
	fmt.Println("the eager column should exceed Jaaru's by many orders of magnitude.")
}

func trimName(s string) string {
	const p = "recipe/"
	if len(s) > len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return s
}
