// Command jaaru-perf regenerates the paper's Figure 14: for each fixed
// RECIPE benchmark, the number of executions Jaaru explores (JExec.), the
// wall-clock exploration time (JTime), the number of failure injection
// points (FPoints), and the number of post-failure states an eager model
// checker such as Yat would have to explore — computed analytically with
// big-integer arithmetic, exactly as the paper did (Yat is not publicly
// available).
//
// Usage:
//
//	jaaru-perf [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"

	"jaaru/internal/core"
	"jaaru/internal/recipe"
	"jaaru/internal/yat"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (1 = default table)")
	flag.Parse()

	fmt.Println("Figure 14 — Jaaru's state space reduction (fixed RECIPE variants)")
	fmt.Printf("%-12s  %7s  %10s  %8s  %8s  %14s\n",
		"Benchmark", "#JExec.", "JTime", "#FPoints", "Ex/FP", "#Yat Execs.")
	fmt.Println("------------------------------------------------------------------")

	for _, prog := range recipe.PerfWorkloads(*scale) {
		res := core.New(prog, core.Options{}).Run()
		if res.Buggy() {
			fmt.Fprintf(os.Stderr, "%s: unexpected bug: %v\n", prog.Name, res.Bugs[0])
			os.Exit(1)
		}
		count := yat.CountStates(prog, core.Options{})
		perFP := float64(res.Executions-1) / float64(max(res.FailurePoints, 1))
		fmt.Printf("%-12s  %7d  %10s  %8d  %8.2f  %14s\n",
			trimName(prog.Name), res.Executions, res.Duration.Round(1e6),
			res.FailurePoints, perFP, count.Sci())
	}
	fmt.Println()
	fmt.Println("Paper (for shape comparison): CCEH 891/14.51s/528/2.17e182,")
	fmt.Println("FAST_FAIR 170/1.48s/41/5.43e15, P-ART 174/1.86s/22/1.21e34,")
	fmt.Println("P-BwTree 71/0.79s/36/1.50e16, P-CLHT 25/1.59s/12/1.93e605,")
	fmt.Println("P-Masstree 24/0.17s/16/1.67e15.")
	fmt.Println("Executions per failure point should fall between ~1.5 and ~8;")
	fmt.Println("the eager column should exceed Jaaru's by many orders of magnitude.")
}

func trimName(s string) string {
	const p = "recipe/"
	if len(s) > len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return s
}
