// Command jaaru-perf regenerates the paper's Figure 14: for each fixed
// RECIPE benchmark, the number of executions Jaaru explores (JExec.), the
// wall-clock exploration time (JTime), the number of failure injection
// points (FPoints), and the number of post-failure states an eager model
// checker such as Yat would have to explore — computed analytically with
// big-integer arithmetic, exactly as the paper did (Yat is not publicly
// available).
//
// With -parallel, it instead benchmarks the parallel exploration driver:
// every Figure 14 workload is explored serially and with -workers worker
// checkers, the results are cross-checked for equivalence (Result fields
// and the canonical observability counters of an instrumented pair), and
// the measurements — including each workload's machine-readable metrics
// block — are written as JSON (BENCH_parallel.json) for CI tracking.
//
// With -snapshots, it instead benchmarks the pre-failure snapshot engine:
// every Figure 14 workload (plus a scaled commit-store program) is explored
// with the engine disabled and enabled, the two runs are cross-checked for
// bit-identical results (Result fields and the canonical observability
// counters), and the measurements — total and pre-failure time, restore
// counts, hit ratio — are written as JSON (BENCH_snapshot.json).
//
// With -memlayout, it instead measures the serial exploration cost of every
// Figure 14 workload (plus the scaled commit-store program): wall clock,
// heap allocations per execution, and bytes per execution, written as JSON
// (BENCH_memlayout.json). With -baseline OLD.json (a -memlayout report from
// a previous revision), each row also carries the allocation reduction and
// speedup, and exploration results are cross-checked against the baseline:
// any difference in executions, scenarios, failure points, steps, or bugs
// fails the run — memory-layout work must not change what is explored.
//
// With -por, it instead benchmarks the partial-order reduction layer: every
// Figure 14 workload (plus the scaled commit-store program and the
// update-heavy RECIPE workloads) is explored with pruning disabled and
// enabled, the two runs are cross-checked for identical behaviours (bug
// sets, failure points, completion), and the scenario counts — unpruned,
// logical, physical — are written as JSON (BENCH_por.json).
//
// With -dist, it instead benchmarks the distributed exploration service: every
// Figure 14 workload is explored serially and through a coordinator plus
// -workers worker processes running in-process over the netsim fabric (full
// wire codec, lease/commit protocol, and merge — only real network latency is
// excluded). An instrumented pair — with one worker killed mid-lease so its
// subtree is requeued on TTL expiry — is cross-checked for bit-identical
// results, and the measurements plus the coordinator's RPC, lease, and requeue
// counts are written as JSON (BENCH_dist.json).
//
// With -replay, it instead benchmarks the choice-point snapshot stack: the
// update-heavy RECIPE workloads (plus two crash-consistent PMDK structures)
// are explored under full replay (no snapshots), the failure-point engine
// alone (-choice-snapshots=false), and the default stack. All three runs are
// cross-checked for bit-identical results, wall-clock speedups and the
// deterministic replayed-choice-step reduction (obs.ReplaySteps) are gated
// at 2x/5x on the RECIPE update rows, and the measurements are written as
// JSON (BENCH_replay.json).
//
// Every BENCH mode embeds the machine-readable observability metrics block of
// an instrumented run in each row, so CI can track any counter over time, and
// -check is the comparator those reports feed: it diffs a freshly generated
// BENCH_*.json against the committed baseline (-baseline) and fails on any
// row with match=false, any row lost from the baseline, or any wall-clock
// field that regressed beyond -tolerance (default 20%) — `make bench-check`
// runs it for every mode.
//
// -cpuprofile and -memprofile write pprof profiles of whichever mode ran.
//
// Usage:
//
//	jaaru-perf [-scale N]
//	jaaru-perf -parallel BENCH_parallel.json [-workers N] [-reps R] [-scale N]
//	jaaru-perf -snapshots BENCH_snapshot.json [-reps R] [-scale N]
//	jaaru-perf -memlayout BENCH_memlayout.json [-baseline OLD.json] [-reps R] [-scale N]
//	jaaru-perf -por BENCH_por.json [-reps R] [-scale N]
//	jaaru-perf -dist BENCH_dist.json [-workers N] [-reps R] [-scale N]
//	jaaru-perf -replay BENCH_replay.json [-reps R] [-scale N]
//	jaaru-perf -check FRESH.json -baseline COMMITTED.json [-tolerance F]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
	"jaaru/internal/profiling"
	"jaaru/internal/recipe"
	"jaaru/internal/yat"
)

// parallelBench is one benchmark row of the -parallel report.
type parallelBench struct {
	Name       string  `json:"name"`
	Executions int     `json:"executions"`
	Scenarios  int     `json:"scenarios"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	ExecsPerS  float64 `json:"execs_per_sec"`
	// Match records the satellite equivalence check: the parallel run
	// produced the identical exploration (executions, scenarios, failure
	// points, bug count) as the serial reference, and an instrumented
	// serial/parallel pair agreed on every canonical observability counter.
	Match bool `json:"match"`
	// Metrics is the observability snapshot of the instrumented parallel
	// run — the machine-readable counter block for CI tracking. The timed
	// reps above run uninstrumented; this extra pair only feeds Match and
	// this field.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

type parallelReport struct {
	Workers    int             `json:"workers"`
	Scale      int             `json:"scale"`
	Reps       int             `json:"reps"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Note       string          `json:"note"`
	Benchmarks []parallelBench `json:"benchmarks"`
}

// runParallelBench measures every Figure 14 workload serially and with the
// requested worker count (best of reps), cross-checks equivalence, and
// writes the JSON report.
func runParallelBench(path string, workers, reps, scale int) {
	rep := parallelReport{
		Workers:    workers,
		Scale:      scale,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "speedup tracks min(workers, num_cpu); on a single-CPU host " +
			"workers time-slice one core and speedup ~1.0 measures driver overhead",
	}
	fmt.Printf("Parallel exploration: serial vs %d workers (best of %d, %d CPU)\n",
		workers, reps, rep.NumCPU)
	fmt.Printf("%-12s  %7s  %10s  %10s  %8s  %6s\n",
		"Benchmark", "#JExec.", "Serial", "Parallel", "Speedup", "Match")
	fmt.Println("------------------------------------------------------------------")

	for _, prog := range recipe.PerfWorkloads(scale) {
		var serial, par time.Duration
		var rs, rp *core.Result
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			rs = core.New(prog, core.Options{}).Run()
			if d := time.Since(t0); r == 0 || d < serial {
				serial = d
			}
			t0 = time.Now()
			rp = core.New(prog, core.Options{Workers: workers}).Run()
			if d := time.Since(t0); r == 0 || d < par {
				par = d
			}
		}
		obsSerial := core.New(prog, core.Options{Observe: true}).Run()
		obsPar := core.New(prog, core.Options{Workers: workers, Observe: true}).Run()
		match := rs.Executions == rp.Executions &&
			rs.Scenarios == rp.Scenarios &&
			rs.FailurePoints == rp.FailurePoints &&
			len(rs.Bugs) == len(rp.Bugs) &&
			obsSerial.Metrics.Canonical() == obsPar.Metrics.Canonical()
		b := parallelBench{
			Name:       trimName(prog.Name),
			Executions: rp.Executions,
			Scenarios:  rp.Scenarios,
			SerialNs:   serial.Nanoseconds(),
			ParallelNs: par.Nanoseconds(),
			Speedup:    float64(serial) / float64(par),
			ExecsPerS:  float64(rp.Executions) / par.Seconds(),
			Match:      match,
			Metrics:    obsPar.Metrics,
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Printf("%-12s  %7d  %10s  %10s  %7.2fx  %6v\n",
			b.Name, b.Executions, serial.Round(1e5), par.Round(1e5), b.Speedup, match)
		if !match {
			fmt.Fprintf(os.Stderr, "%s: parallel exploration diverged from serial\n", prog.Name)
			os.Exit(1)
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

// snapshotBench is one benchmark row of the -snapshots report.
type snapshotBench struct {
	Name       string `json:"name"`
	Executions int    `json:"executions"`
	Scenarios  int    `json:"scenarios"`
	// OffNs/OnNs are the best-of-reps wall-clock exploration times with the
	// snapshot engine disabled and enabled; Reduction = 1 - on/off.
	OffNs     int64   `json:"off_ns"`
	OnNs      int64   `json:"on_ns"`
	Reduction float64 `json:"reduction"`
	// PreFailureOffNs/PreFailureOnNs show where the savings come from: the
	// time spent (re-)executing guest pre-failure segments, from an
	// instrumented pair (not the timed reps).
	PreFailureOffNs int64 `json:"pre_failure_off_ns"`
	PreFailureOnNs  int64 `json:"pre_failure_on_ns"`
	// SnapshotRestores counts scenarios resumed from a captured state;
	// SnapshotHitRatio is restores / scenarios.
	SnapshotRestores int64   `json:"snapshot_restores"`
	SnapshotHitRatio float64 `json:"snapshot_hit_ratio"`
	// Match records the equivalence check: the engine-on run produced a
	// bit-identical exploration (Result fields and canonical observability
	// counters) to the engine-off reference.
	Match bool `json:"match"`
	// Metrics is the observability snapshot of the instrumented engine-on
	// run, for CI tracking.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

type snapshotReport struct {
	Scale      int             `json:"scale"`
	Reps       int             `json:"reps"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Note       string          `json:"note"`
	Benchmarks []snapshotBench `json:"benchmarks"`
}

// commitstoreProgram is a scaled commit-store workload (the paper's §3.2
// pattern): n flushed records committed by a final pointer store, with a
// recovery that validates whatever the commit pointer claims. Pre-failure
// work grows with n, which is exactly what the snapshot engine amortizes.
func commitstoreProgram(n int) core.Program {
	return core.Program{
		Name: "commitstore",
		Run: func(c *core.Context) {
			root := c.Root()
			data := c.AllocLine(uint64(8 * n))
			for i := 0; i < n; i++ {
				c.Store64(data.Add(uint64(8*i)), uint64(0xDA7A+i))
				c.Clflush(data.Add(uint64(8*i)), 8)
				c.Sfence()
			}
			c.StorePtr(root, data)
			c.Clflush(root, 8)
		},
		Recover: func(c *core.Context) {
			data := c.LoadPtr(c.Root())
			if data == 0 {
				return
			}
			for i := 0; i < n; i++ {
				c.Assert(c.Load64(data.Add(uint64(8*i))) == uint64(0xDA7A+i),
					"committed record %d lost its data", i)
			}
		},
	}
}

// snapshotWorkloads is the -snapshots benchmark set: the Figure 14 table
// plus the scaled commit-store program.
func snapshotWorkloads(scale int) []core.Program {
	progs := recipe.PerfWorkloads(scale)
	return append(progs, commitstoreProgram(24*scale))
}

// resultsEqual cross-checks the exploration-level Result fields the two
// configurations must agree on bit-for-bit.
func resultsEqual(a, b *core.Result) bool {
	return a.Executions == b.Executions &&
		a.Scenarios == b.Scenarios &&
		a.FailurePoints == b.FailurePoints &&
		a.Steps == b.Steps &&
		a.RFChoicePoints == b.RFChoicePoints &&
		a.FailDecisionPoints == b.FailDecisionPoints &&
		a.MaxRFCandidates == b.MaxRFCandidates &&
		a.Complete == b.Complete &&
		len(a.Bugs) == len(b.Bugs)
}

// runSnapshotBench measures every workload with the snapshot engine off and
// on (best of reps), cross-checks equivalence, and writes the JSON report.
func runSnapshotBench(path string, reps, scale int) {
	rep := snapshotReport{
		Scale:      scale,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "reduction = 1 - on/off total exploration time; the engine removes " +
			"repeated pre-failure (and recovery-prefix) guest execution, so the " +
			"bound is the workload's pre_failure_off_ns share",
	}
	fmt.Printf("Snapshot engine: exploration time with -snapshots=false vs default (best of %d)\n", reps)
	fmt.Printf("%-12s  %7s  %10s  %10s  %9s  %8s  %6s\n",
		"Benchmark", "#JExec.", "Off", "On", "Reduction", "Restores", "Match")
	fmt.Println("---------------------------------------------------------------------------")

	for _, prog := range snapshotWorkloads(scale) {
		var off, on time.Duration
		var roff, ron *core.Result
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			roff = core.New(prog, core.Options{Snapshots: -1}).Run()
			if d := time.Since(t0); r == 0 || d < off {
				off = d
			}
			t0 = time.Now()
			ron = core.New(prog, core.Options{}).Run()
			if d := time.Since(t0); r == 0 || d < on {
				on = d
			}
		}
		obsOff := core.New(prog, core.Options{Snapshots: -1, Observe: true}).Run()
		obsOn := core.New(prog, core.Options{Observe: true}).Run()
		match := resultsEqual(roff, ron) && resultsEqual(obsOff, obsOn) &&
			obsOff.Metrics.Canonical() == obsOn.Metrics.Canonical()
		b := snapshotBench{
			Name:             trimName(prog.Name),
			Executions:       ron.Executions,
			Scenarios:        ron.Scenarios,
			OffNs:            off.Nanoseconds(),
			OnNs:             on.Nanoseconds(),
			Reduction:        1 - float64(on)/float64(off),
			PreFailureOffNs:  obsOff.Metrics.PreFailureNs,
			PreFailureOnNs:   obsOn.Metrics.PreFailureNs,
			SnapshotRestores: obsOn.Metrics.SnapshotRestores,
			SnapshotHitRatio: float64(obsOn.Metrics.SnapshotRestores) / float64(max(ron.Scenarios, 1)),
			Match:            match,
			Metrics:          obsOn.Metrics,
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Printf("%-12s  %7d  %10s  %10s  %8.1f%%  %8d  %6v\n",
			b.Name, b.Executions, off.Round(1e5), on.Round(1e5),
			100*b.Reduction, b.SnapshotRestores, match)
		if !match {
			fmt.Fprintf(os.Stderr, "%s: snapshot-engine run diverged from reference\n", prog.Name)
			os.Exit(1)
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

// porBench is one benchmark row of the -por report.
type porBench struct {
	Name string `json:"name"`
	// ScenariosUnpruned is the scenario count with the pruning layer
	// disabled (-por=false); ScenariosLogical is the pruned run's "as if
	// unpruned" accounting (the two agree when pruning is exact);
	// ScenariosPruned counts the scenarios the pruned run never physically
	// ran, so ScenariosPhysical = logical − pruned and Reduction =
	// unpruned / physical.
	ScenariosUnpruned int     `json:"scenarios_unpruned"`
	ScenariosLogical  int     `json:"scenarios_logical"`
	ScenariosPruned   int64   `json:"scenarios_pruned"`
	ScenariosPhysical int64   `json:"scenarios_physical"`
	Reduction         float64 `json:"reduction"`
	// OffNs/TotalTimeNs are the best-of-reps wall-clock exploration times
	// with pruning disabled and enabled.
	OffNs             int64 `json:"off_ns"`
	TotalTimeNs       int64 `json:"total_time_ns"`
	RFElisions        int64 `json:"rf_elisions"`
	FingerprintHits   int64 `json:"fingerprint_hits"`
	FingerprintMisses int64 `json:"fingerprint_misses"`
	// Match records the equivalence check: identical bug sets (by type and
	// message), failure-point counts, and completion status — the pruned
	// run reaches exactly the unpruned run's behaviours.
	Match bool `json:"match"`
	// Metrics is the observability snapshot of the instrumented pruned run,
	// for CI tracking.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

type porReport struct {
	Scale      int        `json:"scale"`
	Reps       int        `json:"reps"`
	NumCPU     int        `json:"num_cpu"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Note       string     `json:"note"`
	Benchmarks []porBench `json:"benchmarks"`
}

// bugKeysEqual compares two bug lists as sets of (type, message) keys —
// the bug-identity rule the checker's own dedup uses.
func bugKeysEqual(a, b []*core.BugReport) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make(map[string]int, len(a))
	for _, r := range a {
		keys[r.Type.String()+"|"+r.Message]++
	}
	for _, r := range b {
		k := r.Type.String() + "|" + r.Message
		if keys[k] == 0 {
			return false
		}
		keys[k]--
	}
	return true
}

// porWorkloads is the -por benchmark set: the Figure 14 table, the scaled
// commit-store program, and the update-heavy RECIPE workloads whose
// recurring states the fingerprint layer prunes.
func porWorkloads(scale int) []core.Program {
	return append(snapshotWorkloads(scale), recipe.UpdateWorkloads(scale)...)
}

// runPORBench measures every workload with the pruning layer off and on
// (best of reps, serial — scenario counts must be machine-independent),
// cross-checks behaviour equivalence, and writes the JSON report.
func runPORBench(path string, reps, scale int) {
	rep := porReport{
		Scale:      scale,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "reduction = scenarios_unpruned / scenarios_physical; the insert " +
			"workloads never revisit a persisted state (reduction ~1 from rf " +
			"elision alone), the update workloads recur with period two and " +
			"show the fingerprint layer's full effect",
	}
	fmt.Printf("Partial-order reduction: -por=false vs default (best of %d)\n", reps)
	fmt.Printf("%-14s  %9s  %9s  %10s  %10s  %9s  %6s\n",
		"Benchmark", "Unpruned", "Physical", "Off", "On", "Reduction", "Match")
	fmt.Println("----------------------------------------------------------------------------")

	for _, prog := range porWorkloads(scale) {
		var off, on time.Duration
		var roff, ron *core.Result
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			roff = core.New(prog, core.Options{POR: -1}).Run()
			if d := time.Since(t0); r == 0 || d < off {
				off = d
			}
			t0 = time.Now()
			ron = core.New(prog, core.Options{}).Run()
			if d := time.Since(t0); r == 0 || d < on {
				on = d
			}
		}
		obsOn := core.New(prog, core.Options{Observe: true}).Run()
		match := roff.FailurePoints == ron.FailurePoints &&
			roff.Complete == ron.Complete &&
			bugKeysEqual(roff.Bugs, ron.Bugs)
		physical := int64(ron.Scenarios) - obsOn.Metrics.ScenariosPruned
		b := porBench{
			Name:              trimName(prog.Name),
			ScenariosUnpruned: roff.Scenarios,
			ScenariosLogical:  ron.Scenarios,
			ScenariosPruned:   obsOn.Metrics.ScenariosPruned,
			ScenariosPhysical: physical,
			Reduction:         float64(roff.Scenarios) / float64(max(physical, 1)),
			OffNs:             off.Nanoseconds(),
			TotalTimeNs:       on.Nanoseconds(),
			RFElisions:        obsOn.Metrics.RFElisions,
			FingerprintHits:   obsOn.Metrics.FingerprintHits,
			FingerprintMisses: obsOn.Metrics.FingerprintMisses,
			Match:             match,
			Metrics:           obsOn.Metrics,
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Printf("%-14s  %9d  %9d  %10s  %10s  %8.1fx  %6v\n",
			b.Name, b.ScenariosUnpruned, b.ScenariosPhysical,
			off.Round(1e5), on.Round(1e5), b.Reduction, match)
		if !match {
			fmt.Fprintf(os.Stderr, "%s: pruned exploration diverged from unpruned\n", prog.Name)
			os.Exit(1)
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (1 = default table)")
	workers := flag.Int("workers", 4, "worker checkers for -parallel")
	reps := flag.Int("reps", 3, "measurement repetitions for -parallel/-snapshots/-memlayout (best is kept)")
	parallel := flag.String("parallel", "", "benchmark parallel exploration and write the JSON report to this file")
	snapshots := flag.String("snapshots", "", "benchmark the snapshot engine and write the JSON report to this file")
	memlayout := flag.String("memlayout", "", "benchmark allocation cost per workload and write the JSON report to this file")
	por := flag.String("por", "", "benchmark the partial-order reduction layer and write the JSON report to this file")
	dst := flag.String("dist", "", "benchmark distributed exploration over an in-process fabric and write the JSON report to this file")
	replay := flag.String("replay", "", "benchmark the choice-point snapshot stack against full replay and write the JSON report to this file")
	check := flag.String("check", "", "compare this freshly generated BENCH report against -baseline and fail on match=false, lost rows, or wall-clock regressions")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional wall-clock regression for -check")
	baseline := flag.String("baseline", "", "prior report to diff and cross-check against (-memlayout) or the committed report to compare with (-check)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProfiles := profiling.Start(*cpuprofile, *memprofile)
	defer stopProfiles()

	if *check != "" {
		runCheck(*check, *baseline, *tolerance)
		return
	}
	if *parallel != "" {
		runParallelBench(*parallel, *workers, *reps, *scale)
		return
	}
	if *snapshots != "" {
		runSnapshotBench(*snapshots, *reps, *scale)
		return
	}
	if *memlayout != "" {
		runMemlayoutBench(*memlayout, *baseline, *reps, *scale)
		return
	}
	if *por != "" {
		runPORBench(*por, *reps, *scale)
		return
	}
	if *dst != "" {
		runDistBench(*dst, *workers, *reps, *scale)
		return
	}
	if *replay != "" {
		runReplayBench(*replay, *reps, *scale)
		return
	}

	fmt.Println("Figure 14 — Jaaru's state space reduction (fixed RECIPE variants)")
	fmt.Printf("%-12s  %7s  %10s  %8s  %8s  %14s\n",
		"Benchmark", "#JExec.", "JTime", "#FPoints", "Ex/FP", "#Yat Execs.")
	fmt.Println("------------------------------------------------------------------")

	for _, prog := range recipe.PerfWorkloads(*scale) {
		res := core.New(prog, core.Options{}).Run()
		if res.Buggy() {
			fmt.Fprintf(os.Stderr, "%s: unexpected bug: %v\n", prog.Name, res.Bugs[0])
			os.Exit(1)
		}
		count := yat.CountStates(prog, core.Options{})
		perFP := float64(res.Executions-1) / float64(max(res.FailurePoints, 1))
		fmt.Printf("%-12s  %7d  %10s  %8d  %8.2f  %14s\n",
			trimName(prog.Name), res.Executions, res.Duration.Round(1e6),
			res.FailurePoints, perFP, count.Sci())
	}
	fmt.Println()
	fmt.Println("Paper (for shape comparison): CCEH 891/14.51s/528/2.17e182,")
	fmt.Println("FAST_FAIR 170/1.48s/41/5.43e15, P-ART 174/1.86s/22/1.21e34,")
	fmt.Println("P-BwTree 71/0.79s/36/1.50e16, P-CLHT 25/1.59s/12/1.93e605,")
	fmt.Println("P-Masstree 24/0.17s/16/1.67e15.")
	fmt.Println("Executions per failure point should fall between ~1.5 and ~8;")
	fmt.Println("the eager column should exceed Jaaru's by many orders of magnitude.")
}

func trimName(s string) string {
	const p = "recipe/"
	if len(s) > len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return s
}
