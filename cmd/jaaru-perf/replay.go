package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jaaru/internal/core"
	"jaaru/internal/obs"
	"jaaru/internal/pmdk"
	"jaaru/internal/recipe"
)

// replayBench is one benchmark row of the -replay report: the same workload
// explored under three restore engines —
//
//	replay: no snapshots at all (Snapshots=-1); every scenario re-runs the
//	        guest from the start and replays its whole choice prefix,
//	fp:     the failure-point snapshot engine alone (-choice-snapshots=false,
//	        the escape hatch), which removes pre-failure re-execution but
//	        still replays post-failure recovery prefixes live,
//	stack:  the default — failure-point engine plus the choice-point
//	        snapshot stack, which fast-forwards recovery prefixes too.
type replayBench struct {
	Name       string `json:"name"`
	Executions int    `json:"executions"`
	Scenarios  int    `json:"scenarios"`
	// Best-of-reps wall-clock exploration time per engine.
	ReplayNs int64 `json:"replay_ns"`
	FpNs     int64 `json:"fp_ns"`
	StackNs  int64 `json:"stack_ns"`
	// SpeedupVsReplay = replay/stack (the headline; gated at >=2x on the
	// update-heavy RECIPE rows); SpeedupVsFp = fp/stack (the stack's
	// marginal contribution over the failure-point engine).
	SpeedupVsReplay float64 `json:"speedup_vs_replay"`
	SpeedupVsFp     float64 `json:"speedup_vs_fp"`
	// Physically replayed choice steps per engine (obs.ReplaySteps: guest
	// steps executed while the chooser was consuming a recorded prefix),
	// from instrumented runs. StepReduction = full/stack, gated at >=5x on
	// the update-heavy RECIPE rows; it is counter-based and deterministic,
	// unlike the wall-clock columns.
	ReplayStepsFull  int64   `json:"replay_steps_full"`
	ReplayStepsFp    int64   `json:"replay_steps_fp"`
	ReplayStepsStack int64   `json:"replay_steps_stack"`
	StepReduction    float64 `json:"step_reduction"`
	// ChoiceRestores / ReplayStepsSaved are the stack run's own accounting
	// of what it skipped.
	ChoiceRestores   int64 `json:"choice_restores"`
	ReplayStepsSaved int64 `json:"replay_steps_saved"`
	// Match records the equivalence check: all three engines produced
	// bit-identical explorations (Result fields and canonical observability
	// counters).
	Match bool `json:"match"`
	// Metrics is the observability snapshot of the instrumented stack run,
	// for CI tracking.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
}

type replayReport struct {
	Scale      int           `json:"scale"`
	Reps       int           `json:"reps"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Note       string        `json:"note"`
	Benchmarks []replayBench `json:"benchmarks"`
}

// replayWorkloads is the -replay benchmark set: the update-heavy RECIPE
// workloads at replay-heavy configurations (the gated rows — more keys and
// rounds than the -por tuple, so recovery prefixes are re-replayed hundreds
// of times without snapshots and the engines separate from timer noise)
// plus two crash-consistent PMDK structures for engine coverage on
// transactional redo/undo code.
func replayWorkloads(scale int) []core.Program {
	return []core.Program{
		recipe.CCEHUpdateWorkload(8, 30*scale),
		recipe.CLHTUpdateWorkload(16, 16*scale),
		pmdk.BTreeWorkload(5*scale, pmdk.CreateBugs{}, pmdk.BTreeBugs{}),
		pmdk.HashmapTXWorkload(4*scale, pmdk.HashmapTXBugs{}),
	}
}

// gatedReplayRow reports whether a workload is held to the acceptance
// thresholds (>=2x wall clock vs full replay, >=5x replayed-step reduction).
func gatedReplayRow(name string) bool {
	return name == "recipe/CCEH-update" || name == "recipe/P-CLHT-update"
}

// runReplayBench measures every workload under the three engines (best of
// reps, interleaved), cross-checks bit-identical results, enforces the
// update-heavy RECIPE thresholds, and writes the JSON report.
func runReplayBench(path string, reps, scale int) {
	rep := replayReport{
		Scale:      scale,
		Reps:       reps,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "replay = no snapshots, fp = -choice-snapshots=false (failure-point " +
			"engine only), stack = default; speedup_vs_replay and step_reduction " +
			"are gated at 2x/5x on the update-heavy RECIPE rows; step counts are " +
			"deterministic (obs.ReplaySteps), wall clock is best-of-reps",
	}
	fmt.Printf("Choice-point snapshot stack: replay vs fp-only vs stack (best of %d)\n", reps)
	fmt.Printf("%-16s  %9s  %9s  %9s  %8s  %7s  %8s  %6s\n",
		"Benchmark", "Replay", "Fp", "Stack", "vsReplay", "vsFp", "StepRed", "Match")
	fmt.Println("--------------------------------------------------------------------------------------")

	for _, prog := range replayWorkloads(scale) {
		var tReplay, tFp, tStack time.Duration
		var rReplay, rFp, rStack *core.Result
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			rReplay = core.New(prog, core.Options{Snapshots: -1, ChoiceSnapshots: -1}).Run()
			if d := time.Since(t0); r == 0 || d < tReplay {
				tReplay = d
			}
			t0 = time.Now()
			rFp = core.New(prog, core.Options{ChoiceSnapshots: -1}).Run()
			if d := time.Since(t0); r == 0 || d < tFp {
				tFp = d
			}
			t0 = time.Now()
			rStack = core.New(prog, core.Options{}).Run()
			if d := time.Since(t0); r == 0 || d < tStack {
				tStack = d
			}
		}
		obsReplay := core.New(prog, core.Options{Snapshots: -1, ChoiceSnapshots: -1, Observe: true}).Run()
		obsFp := core.New(prog, core.Options{ChoiceSnapshots: -1, Observe: true}).Run()
		obsStack := core.New(prog, core.Options{Observe: true}).Run()
		match := resultsEqual(rReplay, rStack) && resultsEqual(rFp, rStack) &&
			resultsEqual(obsReplay, obsStack) && resultsEqual(obsFp, obsStack) &&
			obsReplay.Metrics.Canonical() == obsStack.Metrics.Canonical() &&
			obsFp.Metrics.Canonical() == obsStack.Metrics.Canonical()
		b := replayBench{
			Name:             prog.Name,
			Executions:       rStack.Executions,
			Scenarios:        rStack.Scenarios,
			ReplayNs:         tReplay.Nanoseconds(),
			FpNs:             tFp.Nanoseconds(),
			StackNs:          tStack.Nanoseconds(),
			SpeedupVsReplay:  float64(tReplay) / float64(tStack),
			SpeedupVsFp:      float64(tFp) / float64(tStack),
			ReplayStepsFull:  obsReplay.Metrics.ReplaySteps,
			ReplayStepsFp:    obsFp.Metrics.ReplaySteps,
			ReplayStepsStack: obsStack.Metrics.ReplaySteps,
			StepReduction: float64(obsReplay.Metrics.ReplaySteps) /
				float64(max(obsStack.Metrics.ReplaySteps, 1)),
			ChoiceRestores:   obsStack.Metrics.ChoiceRestores,
			ReplayStepsSaved: obsStack.Metrics.ReplayStepsSaved,
			Match:            match,
			Metrics:          obsStack.Metrics,
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		fmt.Printf("%-16s  %9s  %9s  %9s  %7.2fx  %6.2fx  %7.1fx  %6v\n",
			trimName(b.Name), tReplay.Round(1e5), tFp.Round(1e5), tStack.Round(1e5),
			b.SpeedupVsReplay, b.SpeedupVsFp, b.StepReduction, match)
		if !match {
			fmt.Fprintf(os.Stderr, "%s: snapshot-stack exploration diverged from replay reference\n", prog.Name)
			os.Exit(1)
		}
		if gatedReplayRow(prog.Name) {
			if b.SpeedupVsReplay < 2 {
				fmt.Fprintf(os.Stderr, "%s: speedup vs full replay %.2fx below the 2x gate\n",
					prog.Name, b.SpeedupVsReplay)
				os.Exit(1)
			}
			if b.StepReduction < 5 {
				fmt.Fprintf(os.Stderr, "%s: replayed-step reduction %.1fx below the 5x gate\n",
					prog.Name, b.StepReduction)
				os.Exit(1)
			}
		}
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}
