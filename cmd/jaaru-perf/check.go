package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// checkReport is the mode-agnostic view of any BENCH_*.json report: the
// comparator only needs each row's name, its match verdict, and whichever
// wall-clock field the mode writes, so rows are decoded generically.
type checkReport struct {
	Benchmarks []map[string]any `json:"benchmarks"`
}

// wallClockKeys are the per-mode wall-clock fields of the six BENCH reports
// (-parallel, -snapshots, -por, -dist, -replay, -memlayout in that order);
// a row is compared on every key it carries.
var wallClockKeys = []string{
	"parallel_ns", "on_ns", "total_time_ns", "dist_ns", "stack_ns", "wall_ns",
}

// compareReports diffs a freshly generated report against the committed
// baseline and returns the failures: any fresh row with match=false, any
// baseline row missing from the fresh report, and any wall-clock field that
// regressed beyond the tolerance (fresh > baseline*(1+tol)). Faster runs and
// rows new to the fresh report are fine.
func compareReports(label string, fresh, base checkReport, tol float64) []string {
	var fails []string
	baseRows := make(map[string]map[string]any, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		if name, ok := r["name"].(string); ok {
			baseRows[name] = r
		}
	}
	for _, r := range fresh.Benchmarks {
		name, _ := r["name"].(string)
		if m, ok := r["match"].(bool); ok && !m {
			fails = append(fails, fmt.Sprintf("%s: %s: match=false", label, name))
		}
		br, ok := baseRows[name]
		if !ok {
			continue // new row, nothing to compare against
		}
		delete(baseRows, name)
		for _, k := range wallClockKeys {
			fw, fok := r[k].(float64)
			bw, bok := br[k].(float64)
			if fok && bok && bw > 0 && fw > bw*(1+tol) {
				fails = append(fails, fmt.Sprintf(
					"%s: %s: %s regressed %.0f%% (%.0fns -> %.0fns, tolerance %.0f%%)",
					label, name, k, 100*(fw/bw-1), bw, fw, 100*tol))
			}
		}
		// dist-overhead-ratio (dist_ns/serial_ns) is machine-speed
		// independent: serial and dist run on the same host in the same
		// invocation, so a ratio regression is protocol overhead creeping
		// back (chattier commits, bigger frames, coordinator contention) no
		// matter how fast the hardware is.
		if fr, ok := overheadRatio(r); ok {
			if brr, ok := overheadRatio(br); ok && fr > brr*(1+tol) {
				fails = append(fails, fmt.Sprintf(
					"%s: %s: dist-overhead-ratio regressed %.0f%% (%.2fx -> %.2fx, tolerance %.0f%%)",
					label, name, 100*(fr/brr-1), brr, fr, 100*tol))
			}
		}
	}
	for name := range baseRows {
		fails = append(fails, fmt.Sprintf("%s: %s: row missing from fresh report", label, name))
	}
	sort.Strings(fails)
	return fails
}

// overheadRatio extracts dist_ns/serial_ns from a -dist report row; rows of
// the other report modes lack the keys and are skipped.
func overheadRatio(row map[string]any) (float64, bool) {
	d, dok := row["dist_ns"].(float64)
	s, sok := row["serial_ns"].(float64)
	if !dok || !sok || s <= 0 {
		return 0, false
	}
	return d / s, true
}

// runCheck is the -check mode: compare a fresh BENCH report against the
// committed baseline (-baseline) and exit nonzero on any match=false row,
// lost row, or wall-clock regression beyond -tolerance.
func runCheck(freshPath, basePath string, tol float64) {
	if basePath == "" {
		fmt.Fprintln(os.Stderr, "-check requires -baseline (the committed report to diff against)")
		os.Exit(2)
	}
	read := func(path string) checkReport {
		var rep checkReport
		raw, err := os.ReadFile(path)
		if err == nil {
			err = json.Unmarshal(raw, &rep)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "reading %s: %v\n", path, err)
			os.Exit(1)
		}
		return rep
	}
	fresh, base := read(freshPath), read(basePath)
	fails := compareReports(freshPath, fresh, base, tol)
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(fails) > 0 {
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d rows within %.0f%% of %s)\n",
		freshPath, len(fresh.Benchmarks), 100*tol, basePath)
}
