package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustReport(t *testing.T, raw string) checkReport {
	t.Helper()
	var rep checkReport
	if err := json.Unmarshal([]byte(raw), &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCompareReports(t *testing.T) {
	base := mustReport(t, `{"benchmarks":[
		{"name":"cceh","match":true,"wall_ns":1000000},
		{"name":"part","match":true,"wall_ns":2000000},
		{"name":"clht","match":true,"wall_ns":3000000}]}`)

	// Identical report: clean.
	if fails := compareReports("t", base, base, 0.20); len(fails) != 0 {
		t.Errorf("identical reports should pass, got %v", fails)
	}

	// Faster rows and rows new to the fresh report are fine.
	ok := mustReport(t, `{"benchmarks":[
		{"name":"cceh","match":true,"wall_ns":500000},
		{"name":"part","match":true,"wall_ns":2300000},
		{"name":"clht","match":true,"wall_ns":3000000},
		{"name":"newrow","match":true,"wall_ns":9000000}]}`)
	if fails := compareReports("t", ok, base, 0.20); len(fails) != 0 {
		t.Errorf("faster/new rows should pass, got %v", fails)
	}

	// match=false, a >20% regression, and a lost row each fail.
	bad := mustReport(t, `{"benchmarks":[
		{"name":"cceh","match":false,"wall_ns":1000000},
		{"name":"part","match":true,"wall_ns":2500000}]}`)
	fails := compareReports("t", bad, base, 0.20)
	if len(fails) != 3 {
		t.Fatalf("want 3 failures, got %d: %v", len(fails), fails)
	}
	for _, want := range []string{"cceh: match=false", "part: wall_ns regressed 25%", "clht: row missing"} {
		found := false
		for _, f := range fails {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("failures missing %q: %v", want, fails)
		}
	}

	// A regression exactly at the tolerance boundary passes; tolerance is
	// configurable.
	edge := mustReport(t, `{"benchmarks":[
		{"name":"cceh","match":true,"wall_ns":1200000},
		{"name":"part","match":true,"wall_ns":2000000},
		{"name":"clht","match":true,"wall_ns":3000000}]}`)
	if fails := compareReports("t", edge, base, 0.20); len(fails) != 0 {
		t.Errorf("at-tolerance row should pass, got %v", fails)
	}
	if fails := compareReports("t", edge, base, 0.10); len(fails) != 1 {
		t.Errorf("tighter tolerance should fail the 20%% row, got %v", fails)
	}

	// Mode-specific wall-clock keys are compared when present (a -dist row);
	// a dist_ns regression with flat serial_ns also moves the overhead ratio,
	// so both checks fire.
	dbase := mustReport(t, `{"benchmarks":[{"name":"cceh","match":true,"dist_ns":1000000,"serial_ns":500000}]}`)
	dbad := mustReport(t, `{"benchmarks":[{"name":"cceh","match":true,"dist_ns":1500000,"serial_ns":500000}]}`)
	fails = compareReports("t", dbad, dbase, 0.20)
	if len(fails) != 2 || !strings.Contains(fails[0], "dist-overhead-ratio") || !strings.Contains(fails[1], "dist_ns") {
		t.Errorf("dist_ns + overhead-ratio regression not caught: %v", fails)
	}
}

// TestCompareReportsOverheadRatio: the dist-overhead-ratio gate catches
// protocol overhead creeping back even when raw wall clocks stay inside the
// tolerance — e.g. a faster machine hiding a chattier protocol.
func TestCompareReportsOverheadRatio(t *testing.T) {
	base := mustReport(t, `{"benchmarks":[{"name":"cceh","match":true,"dist_ns":1200000,"serial_ns":1000000}]}`)

	// dist_ns up only 4% — but serial got faster too, so the ratio jumped
	// ~30%: the protocol is relatively more expensive. Must fail.
	drift := mustReport(t, `{"benchmarks":[{"name":"cceh","match":true,"dist_ns":1250000,"serial_ns":800000}]}`)
	fails := compareReports("t", drift, base, 0.20)
	if len(fails) != 1 || !strings.Contains(fails[0], "dist-overhead-ratio") {
		t.Errorf("hidden ratio regression not caught: %v", fails)
	}

	// A uniformly slower machine (both numbers up 50%) keeps the ratio flat
	// and must pass the ratio gate (the wall-clock gate is tolerance-bound
	// and covered above).
	slower := mustReport(t, `{"benchmarks":[{"name":"cceh","match":true,"dist_ns":1800000,"serial_ns":1500000}]}`)
	for _, f := range compareReports("t", slower, base, 0.60) {
		if strings.Contains(f, "dist-overhead-ratio") {
			t.Errorf("flat ratio flagged as regression: %v", f)
		}
	}

	// Rows without the dist keys (other report modes) are skipped entirely.
	other := mustReport(t, `{"benchmarks":[{"name":"cceh","match":true,"wall_ns":1000000}]}`)
	if fails := compareReports("t", other, other, 0.20); len(fails) != 0 {
		t.Errorf("non-dist rows should skip the ratio gate, got %v", fails)
	}
}
