// Command jaaru-explain is the bug-forensics front end: it explores a
// benchmark, picks one reported bug, replays its scenario with the forensics
// hooks armed, and prints the structured witness — the recorded decisions,
// the TSO-annotated operation trace, the per-cache-line persistence
// timelines, and the read-from resolution (with constraint-refinement steps)
// of every post-failure load.
//
// Usage:
//
//	jaaru-explain [-buggy] [-n N] [-failures K] [-workers W] <benchmark>
//	jaaru-explain [-bug I] [-minimize] [-json] [-validate] <benchmark>
//	jaaru-explain -from-trace trace.jsonl <benchmark>
//
// -minimize runs delta debugging over the recorded choice prefix first and
// explains the minimized scenario; -json emits the machine-readable witness
// (schema documented in docs/ALGORITHM.md), -validate self-checks it against
// the schema. -from-trace reads a JSONL event trace recorded by
// `jaaru -trace-out` and selects the bug the trace reports instead of bug 0.
//
// Exit status: 0 when a witness was produced, 1 when the exploration found
// no bug to explain, 2 on usage or validation errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"jaaru/internal/benchlist"
	"jaaru/internal/core"
	"jaaru/internal/forensics"
	"jaaru/internal/obs"
	"jaaru/internal/report"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks")
	buggy := flag.Bool("buggy", false, "run the seeded-bug variant")
	n := flag.Int("n", 6, "workload size (inserted keys)")
	failures := flag.Int("failures", 1, "maximum failures per scenario")
	workers := flag.Int("workers", 1, "parallel exploration workers (witnesses are identical to -workers 1)")
	bugIdx := flag.Int("bug", 0, "which reported bug to explain (canonical order)")
	minimize := flag.Bool("minimize", false, "delta-debug the choice prefix before explaining")
	jsonOut := flag.Bool("json", false, "emit the witness as JSON instead of text")
	validate := flag.Bool("validate", false, "check the witness JSON against the documented schema")
	fromTrace := flag.String("from-trace", "", "select the bug recorded in this JSONL event trace (from jaaru -trace-out)")
	flag.Parse()

	bms := benchlist.All()
	if *list || flag.NArg() != 1 {
		fmt.Println("benchmarks:")
		for _, b := range bms {
			fmt.Printf("  %-15s %s\n", b.Name, b.Doc)
		}
		if !*list {
			os.Exit(2)
		}
		return
	}

	name := flag.Arg(0)
	bm := benchlist.Find(name)
	if bm == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", name)
		os.Exit(2)
	}

	prog := bm.Build(*n, *buggy)
	opts := core.Options{
		MaxFailures: *failures,
		FlagMultiRF: true,
		MaxSteps:    100_000,
		Workers:     *workers,
	}
	res := core.New(prog, opts).Run()
	if !res.Buggy() {
		fmt.Fprintf(os.Stderr, "%s: no bugs found — nothing to explain\n", prog.Name)
		os.Exit(1)
	}

	idx := *bugIdx
	if *fromTrace != "" {
		var err error
		idx, err = bugFromTrace(*fromTrace, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}
	if idx < 0 || idx >= len(res.Bugs) {
		fmt.Fprintf(os.Stderr, "no bug %d (%s reported %d)\n", idx, prog.Name, len(res.Bugs))
		os.Exit(2)
	}

	b := res.Bugs[idx]
	var min *forensics.Minimization
	if *minimize {
		b, min = core.Minimize(prog, opts, b)
	}
	w := core.BuildWitness(prog, opts, b)
	w.Minimized = min

	if *jsonOut || *validate {
		data, err := report.WitnessJSON(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding witness: %v\n", err)
			os.Exit(2)
		}
		if *validate {
			if err := forensics.ValidateJSON(data); err != nil {
				fmt.Fprintf(os.Stderr, "witness JSON fails schema: %v\n", err)
				os.Exit(2)
			}
		}
		if *jsonOut {
			os.Stdout.Write(data)
			return
		}
	}
	fmt.Print(report.WitnessText(w))
}

// bugFromTrace reads a recorded JSONL event trace and returns the canonical
// index (in res.Bugs) of the first bug the trace reports, matched by
// (type, message).
func bugFromTrace(path string, res *core.Result) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		return 0, fmt.Errorf("reading %s: %w", path, err)
	}
	for _, ev := range events {
		if ev.Ev != "bug" {
			continue
		}
		typ, msg := ev.Str("type"), ev.Str("message")
		for i, b := range res.Bugs {
			if b.Type.String() == typ && b.Message == msg {
				return i, nil
			}
		}
		return 0, fmt.Errorf("trace reports %s: %s, which this exploration did not reproduce", typ, msg)
	}
	return 0, fmt.Errorf("%s contains no bug event", path)
}
