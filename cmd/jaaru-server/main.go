// Command jaaru-server is the distributed-exploration coordinator: it owns
// the global branch frontier, the shared caps, and the POR publication log
// for every submitted job, and serves the lease protocol (internal/dist)
// over HTTP to a fleet of jaaru-worker processes.
//
// Usage:
//
//	jaaru-server [-addr :8080] [-lowmark N] [-shutdown-when-done]
//	            [-lease-scenarios N] [-max-lease-batch N] [-disable-wire-v2]
//
// Submit work and poll results through the job API:
//
//	curl -X POST localhost:8080/v1/jobs \
//	    -d '{"spec":{"bench":"figure2","buggy":true},"opts":{"Observe":true}}'
//	curl localhost:8080/v1/jobs/j1
//
// Fleet telemetry is served from the same listener: GET /metrics is a
// Prometheus-text scrape (one labeled series per job, including live
// phase-latency histograms), and GET /v1/status is the JSON fleet view
// jaaru-top renders (per-job scenarios/sec, frontier depth, active leases,
// latency quantiles, ETA). -addr :0 binds an ephemeral port and prints the
// actual address, which is what the scrape smoke test drives.
//
// Jobs resolve benchmark names through internal/benchlist, the same registry
// the jaaru CLI uses; workers resolve the identical spec on their side, so
// no guest code ever crosses the wire. A complete distributed run returns a
// Result bit-identical to `jaaru -workers 1` on the same benchmark —
// including runs where workers died mid-lease (their subtrees are requeued
// on lease expiry and re-executed exactly).
//
// SIGINT/SIGTERM shut the listener down gracefully: in-flight requests
// finish, then the process exits. Job state is in-memory only.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jaaru/internal/benchlist"
	"jaaru/internal/core"
	"jaaru/internal/dist"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	lowMark := flag.Int("lowmark", 0, "frontier low-water mark below which workers are asked to donate splits (0: one per starving worker)")
	shutdownWhenDone := flag.Bool("shutdown-when-done", false, "release the worker fleet once every submitted job is done (batch mode)")
	leaseScenarios := flag.Int("lease-scenarios", 0, "adaptive lease sizing target: scenarios a lease batch should cover before its final commit (0: 32)")
	maxLeaseBatch := flag.Int("max-lease-batch", 0, "hard cap on claims per lease grant (0: 16)")
	disableWireV2 := flag.Bool("disable-wire-v2", false, "answer every worker in JSON v1 (debugging/rollback; v2 frames are still accepted)")
	flag.Parse()

	coord, err := dist.NewCoordinator(dist.Config{
		Resolve:              resolve,
		LowMark:              *lowMark,
		ShutdownWhenDone:     *shutdownWhenDone,
		TargetLeaseScenarios: *leaseScenarios,
		MaxLeaseBatch:        *maxLeaseBatch,
		DisableWireV2:        *disableWireV2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Listen explicitly (rather than ListenAndServe) so an ephemeral-port
	// bind (-addr :0) can report the address a scraper should target.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv := &http.Server{Handler: coord}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "jaaru-server: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "jaaru-server: listening on %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}

func resolve(spec dist.ProgSpec) (core.Program, error) {
	b := benchlist.Find(spec.Bench)
	if b == nil {
		return core.Program{}, fmt.Errorf("unknown benchmark %q (see jaaru -list)", spec.Bench)
	}
	n := spec.N
	if n == 0 {
		n = 6
	}
	return b.Build(n, spec.Buggy), nil
}
