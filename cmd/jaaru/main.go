// Command jaaru runs the model checker over any registered benchmark and
// prints the exploration summary: executions, failure points, bugs, and
// (with -multirf) the loads flagged as able to read multiple stores.
//
// Usage:
//
//	jaaru -list
//	jaaru [-buggy] [-n N] [-multirf] [-failures K] [-trace] <benchmark>
//	jaaru [-metrics] [-trace-out FILE] [-progress DUR] [-listen ADDR] <benchmark>
//
// Benchmarks: the six RECIPE structures (cceh, fastfair, part, bwtree,
// clht, masstree), the five PMDK examples (btree, ctree, rbtree,
// hashmap_atomic, hashmap_tx), and the paper's running examples (figure2,
// figure4, commitstore).
//
// -metrics prints the observability counter block after the summary;
// -trace-out streams the JSONL event trace to a file; -progress prints a
// live scenarios/sec + ETA line to stderr while the exploration runs;
// -listen serves live GET /metrics (Prometheus text) and GET /v1/status
// (the JSON view jaaru-top renders) while the run is in flight. All of them
// leave the exploration itself untouched — the counters are accumulated
// independently of the Result fields, so the two always cross-check.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"jaaru/internal/benchlist"
	"jaaru/internal/core"
	"jaaru/internal/obs"
	"jaaru/internal/profiling"
	"jaaru/internal/report"
	"jaaru/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks")
	buggy := flag.Bool("buggy", false, "run the seeded-bug variant")
	n := flag.Int("n", 6, "workload size (inserted keys)")
	failures := flag.Int("failures", 1, "maximum failures per scenario")
	multirf := flag.Bool("multirf", false, "flag loads that can read multiple stores")
	perf := flag.Bool("perfissues", false, "flag redundant flushes and fences")
	random := flag.Bool("random", false, "use the seeded random thread scheduler")
	seed := flag.Int64("seed", 0, "seed for -random and the EvictRandom policy")
	trace := flag.Bool("trace", false, "attach operation traces to bug reports")
	witness := flag.Bool("witness", false, "replay the first bug and print its annotated forensics witness (see also jaaru-explain)")
	workers := flag.Int("workers", 1, "parallel exploration workers (-1 = GOMAXPROCS); results are identical to -workers 1")
	snapshots := flag.Bool("snapshots", true, "amortize pre-failure execution via the snapshot engine; results are identical either way")
	choiceSnapshots := flag.Bool("choice-snapshots", true, "amortize post-failure replay via the choice-point snapshot stack; results are identical either way")
	por := flag.Bool("por", true, "prune equivalent scenarios via partial-order reduction; results are identical either way")
	metrics := flag.Bool("metrics", false, "collect and print the observability counter block")
	traceOut := flag.String("trace-out", "", "write the JSONL event trace to this file (implies -metrics)")
	progress := flag.Duration("progress", 0, "print a live progress line to stderr at this interval (implies -metrics)")
	listen := flag.String("listen", "", "serve live GET /metrics and GET /v1/status on this address while the exploration runs (implies -metrics; :0 picks an ephemeral port)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProfiles := profiling.Start(*cpuprofile, *memprofile)
	defer stopProfiles()

	bms := benchlist.All()
	if *list || flag.NArg() != 1 {
		fmt.Println("benchmarks:")
		for _, b := range bms {
			fmt.Printf("  %-15s %s\n", b.Name, b.Doc)
		}
		if !*list {
			os.Exit(2)
		}
		return
	}

	name := flag.Arg(0)
	chosen := benchlist.Find(name)
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", name)
		os.Exit(2)
	}

	opts := core.Options{
		MaxFailures:     *failures,
		FlagMultiRF:     *multirf,
		FlagPerfIssues:  *perf,
		RandomScheduler: *random,
		Seed:            *seed,
		MaxSteps:        100_000,
		Workers:         *workers,
	}
	if !*snapshots {
		opts.Snapshots = -1
	}
	if !*choiceSnapshots {
		opts.ChoiceSnapshots = -1
	}
	if !*por {
		opts.POR = -1
	}
	if *trace {
		opts.TraceLen = 128
	}
	opts.Observe = *metrics || *progress > 0 || *listen != ""

	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *traceOut, err)
			os.Exit(2)
		}
		traceFile = f
		traceBuf = bufio.NewWriter(f)
		opts.EventTrace = traceBuf
	}

	prog := chosen.Build(*n, *buggy)
	ck := core.New(prog, opts)

	if *listen != "" {
		reg := ck.Observability()
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "listening on %s: %v\n", *listen, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "jaaru: telemetry on http://%s\n", ln.Addr())
		go http.Serve(ln, telemetry.RegistryMux("jaaru", reg, func() []telemetry.JobStatus {
			return []telemetry.JobStatus{telemetry.RegistryJob(name, reg)}
		}))
	}

	var stopProgress chan struct{}
	if *progress > 0 {
		reg := ck.Observability()
		stopProgress = make(chan struct{})
		go func() {
			tick := time.NewTicker(*progress)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					fmt.Fprintln(os.Stderr, reg.Progress())
				}
			}
		}()
	}

	res := ck.Run()
	if stopProgress != nil {
		close(stopProgress)
	}
	if traceBuf != nil {
		err := traceBuf.Flush()
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = ck.Observability().Err()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *traceOut, err)
			os.Exit(2)
		}
	}

	fmt.Printf("\n%s: %d executions, %d scenarios, %d failure points, %d steps, %v\n",
		res.Program, res.Executions, res.Scenarios, res.FailurePoints, res.Steps,
		res.Duration.Round(1e6))
	fmt.Printf("choice points: %d failure decisions, %d read-from (max %d candidates)\n",
		res.FailDecisionPoints, res.RFChoicePoints, res.MaxRFCandidates)
	if !res.Complete {
		fmt.Println("exploration truncated (caps reached)")
	}
	if res.Buggy() {
		fmt.Printf("\n%d distinct bug(s):\n", len(res.Bugs))
		for _, b := range res.Bugs {
			fmt.Printf("  %v\n    choices: %s\n", b, b.Choices)
			if *trace {
				for _, op := range b.Trace {
					fmt.Printf("      %v\n", op)
				}
			}
		}
	} else {
		fmt.Println("no bugs found")
	}
	for _, m := range res.MultiRF {
		fmt.Printf("multi-rf %v\n", m)
	}
	for _, p := range res.PerfIssues {
		fmt.Printf("perf %v\n", p)
	}
	if res.Metrics != nil {
		fmt.Println()
		fmt.Print(metricsBlock(res.Metrics))
	}
	if *witness && res.Buggy() {
		fmt.Println()
		fmt.Print(report.WitnessText(core.BuildWitness(prog, opts, res.Bugs[0])))
	}
	if res.Buggy() {
		stopProfiles() // os.Exit skips the deferred stop
		os.Exit(1)
	}
}

// metricsBlock renders the merged observability counters as the two-column
// block the summary prints under -metrics.
func metricsBlock(m *obs.Metrics) string {
	dur := func(ns int64) string {
		return time.Duration(ns).Round(time.Microsecond).String()
	}
	kvs := []report.KV{
		{Key: "scenarios", Value: m.Scenarios},
		{Key: "executions", Value: m.Executions},
		{Key: "post-failure executions", Value: m.ExecutionsPost},
		{Key: "guest steps", Value: m.Steps},
		{Key: "pre-failure time", Value: dur(m.PreFailureNs)},
		{Key: "post-failure time", Value: dur(m.PostFailureNs)},
		{Key: "replay time", Value: dur(m.ReplayNs)},
		{Key: "loads: store-buffer hits", Value: m.LoadSBHits},
		{Key: "loads: cache hits", Value: m.LoadCacheHits},
		{Key: "loads: refinements", Value: m.LoadRefinements},
		{Key: "rf candidates (total)", Value: m.RFCandidates},
		{Key: "rf candidates (max)", Value: m.MaxRFCandidates},
		{Key: "choices replayed", Value: m.ChoicesReplayed},
		{Key: "choices restored", Value: m.ChoicesRestored},
		{Key: "choices fresh", Value: m.ChoicesFresh},
		{Key: "replayed guest steps", Value: m.ReplaySteps},
		{Key: "choice depth (max)", Value: m.MaxChoiceDepth},
		{Key: "store-buffer evictions", Value: m.SBEvictions},
		{Key: "flush-buffer writebacks", Value: m.FBWritebacks},
		{Key: "store-buffer occupancy (max)", Value: m.MaxSBOccupancy},
		{Key: "flush-buffer occupancy (max)", Value: m.MaxFBOccupancy},
	}
	if m.SnapshotCaptures > 0 {
		kvs = append(kvs,
			report.KV{Key: "snapshots captured", Value: m.SnapshotCaptures},
			report.KV{Key: "snapshots restored", Value: m.SnapshotRestores},
			report.KV{Key: "snapshot restore time", Value: dur(m.SnapshotRestoreNs)},
			report.KV{Key: "snapshot bytes (max)", Value: m.MaxSnapshotBytes})
	}
	if m.ChoiceSnapCaptures > 0 {
		kvs = append(kvs,
			report.KV{Key: "choice snapshots captured", Value: m.ChoiceSnapCaptures},
			report.KV{Key: "choice snapshots restored", Value: m.ChoiceRestores},
			report.KV{Key: "choice restore time", Value: dur(m.ChoiceRestoreNs)},
			report.KV{Key: "replay steps saved", Value: m.ReplayStepsSaved},
			report.KV{Key: "refinements skipped", Value: m.RefinementsSkipped})
	}
	if m.RFElisions > 0 || m.FingerprintHits > 0 || m.FingerprintMisses > 0 {
		kvs = append(kvs,
			report.KV{Key: "rf elisions", Value: m.RFElisions},
			report.KV{Key: "scenarios pruned", Value: m.ScenariosPruned},
			report.KV{Key: "fingerprint hits", Value: m.FingerprintHits},
			report.KV{Key: "fingerprint misses", Value: m.FingerprintMisses})
	}
	if m.Workers > 1 {
		kvs = append(kvs,
			report.KV{Key: "workers", Value: m.Workers},
			report.KV{Key: "frontier pushed", Value: m.FrontierPushed},
			report.KV{Key: "frontier claimed", Value: m.FrontierClaimed},
			report.KV{Key: "donations", Value: m.Donations},
			report.KV{Key: "frontier length (max)", Value: m.MaxFrontierLen})
	}
	if m.Events > 0 {
		kvs = append(kvs, report.KV{Key: "trace events", Value: m.Events})
	}
	return report.KVBlock("observability", kvs)
}
