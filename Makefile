# Developer / CI entry points. `make verify` is the gate every change must
# pass: vet, full build, the full test suite, and a race-detector pass over
# the packages with shared mutable state (the parallel exploration driver
# and the TSO simulation it drives).

GO ?= go

.PHONY: all build test vet race verify explain-smoke bench bench-mem bench-parallel bench-snapshot bench-memlayout bench-por bench-dist bench-replay clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel driver (internal/core) and the store-buffer machinery it
# exercises concurrently (internal/tso) get a dedicated race-detector pass,
# plus the root-package snapshot and POR equivalence suites, which drive the
# per-worker snapshot caches and the shared fingerprint seen-set under
# Workers=4. The distributed coordinator/worker path (internal/dist over the
# internal/netsim fabric) runs its whole equivalence suite under -race too:
# healthy fleets, a worker killed mid-lease with TTL expiry and requeue,
# duplicate commit delivery, transient outages, and graceful drain must all
# merge bit-identical to serial.
race:
	$(GO) test -race ./internal/core/ ./internal/tso/
	$(GO) test -race ./internal/dist/ ./internal/netsim/
	$(GO) test -race -run 'TestSnapshotEquivalence|TestPOREquivalence' .
	$(GO) test -race -run 'TestChoiceSnapshotEquivalence' ./internal/benchlist/

# Allocation-regression gates: the testing.AllocsPerRun pins that keep the
# paged-layout hot path (guest ops, scenario reset, journal mark/rewind)
# at zero heap allocations once warmed.
bench-mem:
	$(GO) test -run 'TestSteadyStateOpAllocations|TestScenarioResetAllocations' -count=1 ./internal/core/
	$(GO) test -run TestStackOpsAllocFree -count=1 ./internal/pmem/

verify: vet build test race bench-mem

# End-to-end forensics smoke: find the commitstore bug, minimize its choice
# prefix, build the witness, and validate the emitted JSON against the schema.
explain-smoke:
	$(GO) run ./cmd/jaaru-explain -buggy -minimize -json -validate commitstore > /dev/null

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate the parallel-scaling report (BENCH_parallel.json).
bench-parallel:
	$(GO) run ./cmd/jaaru-perf -parallel BENCH_parallel.json

# Regenerate the snapshot off-vs-on report (BENCH_snapshot.json).
bench-snapshot:
	$(GO) run ./cmd/jaaru-perf -snapshots BENCH_snapshot.json

# Regenerate the POR off-vs-on report (BENCH_por.json): explored-scenario
# reduction and result-equivalence check per workload. Exits nonzero on any
# off/on result mismatch.
bench-por:
	$(GO) run ./cmd/jaaru-perf -por BENCH_por.json

# Regenerate the distributed-exploration report (BENCH_dist.json): serial vs
# a coordinator + worker fleet over the in-process netsim fabric, with an
# instrumented worker-killed-mid-lease pair cross-checked for bit-identical
# results. Exits nonzero on any serial/distributed mismatch.
bench-dist:
	$(GO) run ./cmd/jaaru-perf -dist BENCH_dist.json

# Regenerate the choice-point snapshot stack report (BENCH_replay.json):
# full replay vs the failure-point engine alone vs the default stack, per
# update-heavy workload. Exits nonzero on any result mismatch or if the
# gated RECIPE rows fall below 2x wall clock / 5x replayed-step reduction.
bench-replay:
	$(GO) run ./cmd/jaaru-perf -replay BENCH_replay.json

# Regenerate the paged-memory-layout report (BENCH_memlayout.json). Pass
# BASELINE=<old.json> to compute allocation/speedup deltas against a run
# from a previous revision.
bench-memlayout:
	$(GO) run ./cmd/jaaru-perf -memlayout BENCH_memlayout.json $(if $(BASELINE),-baseline $(BASELINE))

clean:
	$(GO) clean ./...
