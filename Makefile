# Developer / CI entry points. `make verify` is the gate every change must
# pass: vet, full build, the full test suite, and a race-detector pass over
# the packages with shared mutable state (the parallel exploration driver
# and the TSO simulation it drives).

GO ?= go

# Measurement repetitions for the BENCH report targets (best of REPS is
# kept). 10 keeps the wall-clock minima stable enough for bench-check's
# regression tolerance even on a contended single-CPU host.
REPS ?= 10

.PHONY: all build test vet race verify explain-smoke bench bench-mem bench-parallel bench-snapshot bench-memlayout bench-por bench-dist bench-replay bench-check scrape-smoke clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel driver (internal/core) and the store-buffer machinery it
# exercises concurrently (internal/tso) get a dedicated race-detector pass,
# plus the root-package snapshot and POR equivalence suites, which drive the
# per-worker snapshot caches and the shared fingerprint seen-set under
# Workers=4. The distributed coordinator/worker path (internal/dist over the
# internal/netsim fabric) runs its whole equivalence suite under -race too:
# healthy fleets, a worker killed mid-lease with TTL expiry and requeue,
# duplicate commit delivery, transient outages, and graceful drain must all
# merge bit-identical to serial.
race:
	$(GO) test -race ./internal/core/ ./internal/tso/
	$(GO) test -race ./internal/dist/ ./internal/netsim/
	$(GO) test -race -run 'TestSnapshotEquivalence|TestPOREquivalence' .
	$(GO) test -race -run 'TestChoiceSnapshotEquivalence' ./internal/benchlist/

# Allocation-regression gates: the testing.AllocsPerRun pins that keep the
# paged-layout hot path (guest ops, scenario reset, journal mark/rewind)
# at zero heap allocations once warmed.
bench-mem:
	$(GO) test -run 'TestSteadyStateOpAllocations|TestScenarioResetAllocations' -count=1 ./internal/core/
	$(GO) test -run TestStackOpsAllocFree -count=1 ./internal/pmem/

verify: vet build test race bench-mem

# End-to-end forensics smoke: find the commitstore bug, minimize its choice
# prefix, build the witness, and validate the emitted JSON against the schema.
explain-smoke:
	$(GO) run ./cmd/jaaru-explain -buggy -minimize -json -validate commitstore > /dev/null

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate the parallel-scaling report (BENCH_parallel.json).
bench-parallel:
	$(GO) run ./cmd/jaaru-perf -parallel BENCH_parallel.json -reps $(REPS)

# Regenerate the snapshot off-vs-on report (BENCH_snapshot.json).
bench-snapshot:
	$(GO) run ./cmd/jaaru-perf -snapshots BENCH_snapshot.json -reps $(REPS)

# Regenerate the POR off-vs-on report (BENCH_por.json): explored-scenario
# reduction and result-equivalence check per workload. Exits nonzero on any
# off/on result mismatch.
bench-por:
	$(GO) run ./cmd/jaaru-perf -por BENCH_por.json -reps $(REPS)

# Regenerate the distributed-exploration report (BENCH_dist.json): serial vs
# a coordinator + worker fleet over the in-process netsim fabric, with an
# instrumented worker-killed-mid-lease pair cross-checked for bit-identical
# results. Exits nonzero on any serial/distributed mismatch.
bench-dist:
	$(GO) run ./cmd/jaaru-perf -dist BENCH_dist.json -reps $(REPS)

# Regenerate the choice-point snapshot stack report (BENCH_replay.json):
# full replay vs the failure-point engine alone vs the default stack, per
# update-heavy workload. Exits nonzero on any result mismatch or if the
# gated RECIPE rows fall below 2x wall clock / 5x replayed-step reduction.
bench-replay:
	$(GO) run ./cmd/jaaru-perf -replay BENCH_replay.json -reps $(REPS)

# Regenerate the paged-memory-layout report (BENCH_memlayout.json). Pass
# BASELINE=<old.json> to compute allocation/speedup deltas against a run
# from a previous revision.
bench-memlayout:
	$(GO) run ./cmd/jaaru-perf -memlayout BENCH_memlayout.json -reps $(REPS) $(if $(BASELINE),-baseline $(BASELINE))

# Bench comparator: regenerate every BENCH report into a scratch dir and diff
# each against its committed baseline. Fails on any row with match=false (an
# equivalence check broke), any row lost from the baseline (coverage shrank),
# or any wall-clock field that regressed beyond TOLERANCE (fraction, default
# 0.20). Pass TOLERANCE=0.60 on hardware unlike the one the baselines were
# recorded on — the match and coverage checks stay exact either way.
BENCHDIR ?= /tmp/jaaru-bench-check
TOLERANCE ?= 0.20
bench-check:
	mkdir -p $(BENCHDIR)
	$(GO) build -o $(BENCHDIR)/jaaru-perf ./cmd/jaaru-perf
	$(BENCHDIR)/jaaru-perf -parallel $(BENCHDIR)/BENCH_parallel.json -reps $(REPS)
	$(BENCHDIR)/jaaru-perf -snapshots $(BENCHDIR)/BENCH_snapshot.json -reps $(REPS)
	$(BENCHDIR)/jaaru-perf -por $(BENCHDIR)/BENCH_por.json -reps $(REPS)
	$(BENCHDIR)/jaaru-perf -dist $(BENCHDIR)/BENCH_dist.json -reps $(REPS)
	$(BENCHDIR)/jaaru-perf -replay $(BENCHDIR)/BENCH_replay.json -reps $(REPS)
	$(BENCHDIR)/jaaru-perf -memlayout $(BENCHDIR)/BENCH_memlayout.json -reps $(REPS)
	for m in parallel snapshot por dist replay memlayout; do \
		$(BENCHDIR)/jaaru-perf -check $(BENCHDIR)/BENCH_$$m.json \
			-baseline BENCH_$$m.json -tolerance $(TOLERANCE) || exit 1; \
	done

# Telemetry scrape smoke: boot a coordinator on an ephemeral TCP port, run a
# real worker fleet against it, GET /metrics and /v1/status over the wire,
# and validate the Prometheus exposition with the strict test parser.
scrape-smoke:
	$(GO) test -run TestScrapeSmoke -count=1 ./internal/dist/

clean:
	$(GO) clean ./...
