// RECIPE bug hunt: model-check the CCEH hash index exactly as the paper's
// evaluation does — run the seeded buggy variant (a missing flush in the
// constructor), watch Jaaru find the bug, then run the fixed variant and
// watch it explore the whole state space clean.
//
// Run with:
//
//	go run ./examples/recipe
package main

import (
	"fmt"

	"jaaru"
	"jaaru/internal/recipe"
)

func main() {
	fmt.Println("== CCEH with a missing flush in the constructor (CCEH-2) ==")
	buggy := recipe.CCEHWorkload(4, recipe.CCEHBugs{NoDirArrayFlush: true})
	res := jaaru.Check(buggy, jaaru.Options{FlagMultiRF: true, StopAtFirstBug: true})
	for _, b := range res.Bugs {
		fmt.Printf("  found: %v\n  replay choices: %s\n", b, b.Choices)
	}
	for _, m := range res.MultiRF {
		fmt.Printf("  flagged load: %v\n", m)
	}

	fmt.Println("\n== CCEH with the flush in place ==")
	fixed := recipe.CCEHWorkload(4, recipe.CCEHBugs{})
	res = jaaru.Check(fixed, jaaru.Options{})
	fmt.Printf("  %d executions, %d failure points, bugs: %d, complete: %v\n",
		res.Executions, res.FailurePoints, len(res.Bugs), res.Complete)
}
