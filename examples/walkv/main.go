// walkv: a tiny write-ahead-log key-value store using checksum-based
// recovery — the §4 "Checksum-based recovery" scenario. Records are
// appended to a persistent log as {key, value, checksum} with NO explicit
// commit flush of the record body: recovery scans the log and trusts a
// record only if its checksum validates, so torn or unpersisted records
// are rejected by arithmetic rather than by a flush protocol. Jaaru
// explores every combination of persisted record bytes; the checksum
// guards must make all of them safe.
//
// Run with:
//
//	go run ./examples/walkv
package main

import (
	"fmt"
	"sort"

	"jaaru"
)

const (
	recSize = 24 // key, value, fnv64(key,value)
	maxRecs = 8
	offHead = 0 // committed record count (persisted commit store)
	offLog  = 64
)

func appendRecord(c *jaaru.Context, k, v uint64) {
	root := c.Root()
	head := c.Load64(root.Add(offHead))
	rec := root.Add(offLog + head*recSize)
	c.Store64(rec, k)
	c.Store64(rec.Add(8), v)
	sum := c.Fnv64(rec, 16)
	c.Store64(rec.Add(16), sum)
	// Deliberately no flush of the record: the checksum carries the
	// commitment. Only the head counter gets the commit treatment.
	c.Store64(root.Add(offHead), head+1)
	c.Persist(root.Add(offHead), 8)
}

func main() {
	recovered := make(map[string]bool)

	prog := jaaru.Program{
		Name: "walkv",
		Run: func(c *jaaru.Context) {
			appendRecord(c, 1, 100)
			appendRecord(c, 2, 200)
			appendRecord(c, 3, 300)
		},
		Recover: func(c *jaaru.Context) {
			root := c.Root()
			head := c.Load64(root.Add(offHead))
			c.Assert(head <= maxRecs, "log head %d corrupt", head)
			state := ""
			for i := uint64(0); i < head; i++ {
				rec := root.Add(offLog + i*recSize)
				sum := c.Load64(rec.Add(16))
				if c.Fnv64(rec, 16) != sum || sum == 0 {
					state += "?"
					continue // torn record: rejected by checksum
				}
				k, v := c.Load64(rec), c.Load64(rec.Add(8))
				c.Assert(v == k*100, "checksum validated a torn record: k=%d v=%d", k, v)
				state += fmt.Sprintf("[%d=%d]", k, v)
			}
			recovered[state] = true
		},
	}

	res := jaaru.Check(prog, jaaru.Options{})
	fmt.Printf("explored %d executions, %d failure points\n", res.Executions, res.FailurePoints)
	if res.Buggy() {
		for _, b := range res.Bugs {
			fmt.Printf("BUG: %v\n", b)
		}
		return
	}
	fmt.Println("no checksummed record was ever torn; recovered log states:")
	states := make([]string, 0, len(recovered))
	for s := range recovered {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		if s == "" {
			s = "(empty)"
		}
		fmt.Printf("  %s\n", s)
	}
}
