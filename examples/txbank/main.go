// Transactional bank: failure-atomic transfers between persistent accounts
// using the mini-PMDK undo-log transactions. The invariant — the sum of all
// balances is conserved — must hold in every post-failure state; Jaaru
// proves it by exploring all of them. Flip `skipUndo` to see a torn
// transfer survive a crash.
//
// Run with:
//
//	go run ./examples/txbank
package main

import (
	"fmt"

	"jaaru"
	"jaaru/internal/pmdk"
)

const (
	nAccounts = 4
	initBal   = 100
)

func program(skipUndo bool) jaaru.Program {
	bugs := pmdk.TxBugs{SkipAdd: skipUndo}
	return jaaru.Program{
		Name: "txbank",
		Run: func(c *jaaru.Context) {
			p := pmdk.Create(c, 16<<10, pmdk.CreateBugs{})
			accounts := p.PAlloc(nAccounts*8, pmdk.HeapBugs{})
			for i := uint64(0); i < nAccounts; i++ {
				c.Store64(accounts.Add(8*i), initBal)
			}
			c.Persist(accounts, nAccounts*8)
			p.SetRootObj(accounts)

			transfer := func(from, to, amount uint64) {
				tx := p.TxBegin(bugs)
				tx.AddSkippable(accounts.Add(8*from), 8)
				tx.AddSkippable(accounts.Add(8*to), 8)
				c.Store64(accounts.Add(8*from), c.Load64(accounts.Add(8*from))-amount)
				c.Store64(accounts.Add(8*to), c.Load64(accounts.Add(8*to))+amount)
				tx.Commit()
			}
			transfer(0, 1, 30)
			transfer(1, 2, 75)
			transfer(2, 3, 50)
		},
		Recover: func(c *jaaru.Context) {
			p, ok := pmdk.Open(c)
			if !ok {
				return
			}
			p.TxRecover()
			accounts := p.RootObj()
			if accounts == 0 {
				return
			}
			var sum uint64
			for i := uint64(0); i < nAccounts; i++ {
				sum += c.Load64(accounts.Add(8 * i))
			}
			c.Assert(sum == nAccounts*initBal,
				"money not conserved: total %d, want %d", sum, nAccounts*initBal)
		},
	}
}

func main() {
	fmt.Println("== transfers under undo-log transactions ==")
	res := jaaru.Check(program(false), jaaru.Options{})
	fmt.Printf("  %d executions, %d failure points, bugs: %d\n",
		res.Executions, res.FailurePoints, len(res.Bugs))

	fmt.Println("\n== transfers with the undo entries skipped ==")
	res = jaaru.Check(program(true), jaaru.Options{StopAtFirstBug: true})
	for _, b := range res.Bugs {
		fmt.Printf("  found: %v\n", b)
	}
}
