// pmserver: model checking a Memcached-style persistent-memory key-value
// server. The paper could not check Redis/Memcached because network
// nondeterminism "would require deterministic replay for a model checker
// to work" (§5) — this example supplies that replay: the client session is
// recorded as a trace and replayed identically in every explored
// execution, so only the persistency nondeterminism remains.
//
// The server commits each mutation together with the request sequence
// number in one undo transaction (exactly-once). The buggy variant commits
// the sequence number separately; a crash between the two transactions
// replays a request, which the non-idempotent ADD turns into a wrong
// balance.
//
// Run with:
//
//	go run ./examples/pmserver
package main

import (
	"fmt"

	"jaaru"
	"jaaru/internal/netsim"
)

func main() {
	trace := netsim.Trace{
		{Op: netsim.OpSet, Key: 100, Val: 1000}, // open account 100
		{Op: netsim.OpAdd, Key: 100, Val: 250},  // deposit
		{Op: netsim.OpGet, Key: 100},
		{Op: netsim.OpSet, Key: 200, Val: 500}, // open account 200
		{Op: netsim.OpAdd, Key: 200, Val: 125}, // deposit
		{Op: netsim.OpDel, Key: 100},           // close account 100
		{Op: netsim.OpAdd, Key: 200, Val: 375}, // deposit
	}
	fmt.Println("recorded client session:")
	for i, r := range trace {
		fmt.Printf("  #%d %v\n", i, r)
	}

	fmt.Println("\n== exactly-once server (mutation + sequence number in one transaction) ==")
	res := jaaru.Check(netsim.Program("pmserver", trace, netsim.ServerBugs{}), jaaru.Options{})
	fmt.Printf("  %d executions across %d failure points: %d bugs, complete=%v\n",
		res.Executions, res.FailurePoints, len(res.Bugs), res.Complete)

	fmt.Println("\n== buggy server (sequence number committed in a separate transaction) ==")
	res = jaaru.Check(netsim.Program("pmserver-buggy", trace, netsim.ServerBugs{SeqOutsideTx: true}),
		jaaru.Options{StopAtFirstBug: true})
	for _, b := range res.Bugs {
		fmt.Printf("  found: %v\n  replay: %s\n", b, b.Choices)
	}
}
