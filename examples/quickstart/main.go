// Quickstart: the paper's Figures 2 and 3 — constraint refinement on two
// variables sharing a cache line.
//
// The program stores y=1, x=2, flushes the line, then stores y=3, x=4, y=5,
// x=6 and crashes. Jaaru explores every post-failure state: x must be one
// of {0, 2, 4, 6} (0 only before the clflush took effect), and the value
// read for x refines the writeback interval so that y's candidates shrink
// accordingly — e.g. reading x=4 proves the line was written back between
// the stores x=4 and x=6, so y can only be 3 or 5.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"jaaru"
)

func main() {
	states := make(map[string]int)

	prog := jaaru.Program{
		Name: "quickstart",
		Run: func(c *jaaru.Context) {
			base := c.Root()
			x, y := base, base.Add(8) // same 64-byte cache line
			c.Store64(y, 1)
			c.Store64(x, 2)
			c.Clflush(x, 8)
			c.Store64(y, 3)
			c.Store64(x, 4)
			c.Store64(y, 5)
			c.Store64(x, 6)
			// Power failure injected before the clflush and at the end.
		},
		Recover: func(c *jaaru.Context) {
			base := c.Root()
			x := c.Load64(base)
			y := c.Load64(base.Add(8))
			states[fmt.Sprintf("x=%d y=%d", x, y)]++
		},
	}

	res := jaaru.Check(prog, jaaru.Options{})

	fmt.Printf("explored %d executions across %d failure scenarios (%d failure points)\n\n",
		res.Executions, res.Scenarios, res.FailurePoints)
	fmt.Println("distinct post-failure states (the prefix cuts of the store order):")
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s\n", k)
	}
	if res.Buggy() {
		fmt.Println("\nbugs:")
		for _, b := range res.Bugs {
			fmt.Printf("  %v\n", b)
		}
	} else {
		fmt.Println("\nno bugs (this program has no recovery invariants to violate)")
	}
}
