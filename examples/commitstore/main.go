// Commit stores: the paper's Figure 4 (addChild / readChild), with and
// without the commit-store discipline, demonstrating both the lazy
// exploration win (§3.2) and the debugging support for missing flushes.
//
// The correct version flushes the child's data before publishing it through
// the child pointer (the commit store); recovery checks the pointer before
// touching the data, so Jaaru explores just 1 + 2 + 1 post-failure
// executions across the three failure points. The buggy version omits the
// data flush: recovery can observe a committed pointer whose data did not
// persist, which Jaaru reports along with the load that could read from
// more than one store.
//
// Run with:
//
//	go run ./examples/commitstore
package main

import (
	"fmt"

	"jaaru"
)

const dataValue = 0xDA7A

func addChild(c *jaaru.Context, flushData bool) {
	root := c.Root() // ptr->child lives here
	tmp := c.AllocLine(8)
	c.Store64(tmp, dataValue) // tmp->data = data
	if flushData {
		c.Clflush(tmp, 8)
	}
	c.StorePtr(root, tmp) // ptr->child = tmp  (the commit store)
	c.Clflush(root, 8)
}

func readChild(c *jaaru.Context) {
	child := c.LoadPtr(c.Root())
	if child == 0 {
		return // not committed: nothing to read
	}
	// The commit store guarantees the data was persisted first.
	c.Assert(c.Load64(child) == dataValue, "committed child lost its data")
}

func run(name string, flushData bool) {
	prog := jaaru.Program{
		Name:    name,
		Run:     func(c *jaaru.Context) { addChild(c, flushData) },
		Recover: readChild,
	}
	res := jaaru.Check(prog, jaaru.Options{FlagMultiRF: true, Observe: true})
	fmt.Printf("%s:\n", name)
	fmt.Printf("  failure points: %d, post-failure executions: %d\n",
		res.FailurePoints, res.Executions-1)
	// Observe attaches the counter snapshot: the refinement counters make
	// the lazy-exploration win visible (each recovery load consults the
	// interval constraints instead of enumerating states eagerly).
	fmt.Printf("  refined loads: %d (%d candidate stores, max %d per load)\n",
		res.Metrics.LoadRefinements, res.Metrics.RFCandidates, res.Metrics.MaxRFCandidates)
	if res.Buggy() {
		for _, b := range res.Bugs {
			fmt.Printf("  BUG: %v\n", b)
		}
		for _, m := range res.MultiRF {
			fmt.Printf("  debugging support: %v\n", m)
		}
	} else {
		fmt.Println("  no bugs: the commit-store discipline holds")
	}
	fmt.Println()
}

func main() {
	run("addChild-correct", true)
	run("addChild-missing-flush", false)
}
