// Commit stores: the paper's Figure 4 (addChild / readChild), with and
// without the commit-store discipline, demonstrating both the lazy
// exploration win (§3.2) and the debugging support for missing flushes.
//
// The correct version flushes the child's data before publishing it through
// the child pointer (the commit store); recovery checks the pointer before
// touching the data, so Jaaru explores just 1 + 2 + 1 post-failure
// executions across the three failure points. The buggy version omits the
// data flush: recovery can observe a committed pointer whose data did not
// persist, which Jaaru reports along with the load that could read from
// more than one store — and, via the forensics layer, a minimized witness
// explaining exactly which stores each recovery load could observe and why.
//
// Run with:
//
//	go run ./examples/commitstore
package main

import (
	"fmt"

	"jaaru"
)

const dataValue = 0xDA7A

func addChild(c *jaaru.Context, flushData bool) {
	root := c.Root() // ptr->child lives here
	tmp := c.AllocLine(8)
	c.Store64(tmp, dataValue) // tmp->data = data
	if flushData {
		c.Clflush(tmp, 8)
	}
	c.StorePtr(root, tmp) // ptr->child = tmp  (the commit store)
	c.Clflush(root, 8)
}

func readChild(c *jaaru.Context) {
	child := c.LoadPtr(c.Root())
	if child == 0 {
		return // not committed: nothing to read
	}
	// The commit store guarantees the data was persisted first.
	c.Assert(c.Load64(child) == dataValue, "committed child lost its data")
}

func run(name string, flushData bool) {
	prog := jaaru.Program{
		Name:    name,
		Run:     func(c *jaaru.Context) { addChild(c, flushData) },
		Recover: readChild,
	}
	res := jaaru.Check(prog, jaaru.Options{FlagMultiRF: true, Observe: true})
	fmt.Printf("%s:\n", name)
	fmt.Printf("  failure points: %d, post-failure executions: %d\n",
		res.FailurePoints, res.Executions-1)
	// Observe attaches the counter snapshot: the refinement counters make
	// the lazy-exploration win visible (each recovery load consults the
	// interval constraints instead of enumerating states eagerly).
	fmt.Printf("  refined loads: %d (%d candidate stores, max %d per load)\n",
		res.Metrics.LoadRefinements, res.Metrics.RFCandidates, res.Metrics.MaxRFCandidates)
	if res.Buggy() {
		for _, b := range res.Bugs {
			fmt.Printf("  BUG: %v\n", b)
		}
		for _, m := range res.MultiRF {
			fmt.Printf("  debugging support: %v\n", m)
		}
		explain(res)
	} else {
		fmt.Println("  no bugs: the commit-store discipline holds")
	}
	fmt.Println()
}

// explain builds the structured witness for the first bug: the minimized
// decision prefix, where the power failure was injected, and — for each
// post-failure load — which stores it could legally have read from. The
// full text/JSON renderings are available via jaaru.FormatWitnessText and
// jaaru.MarshalWitnessJSON, or `go run ./cmd/jaaru-explain -buggy commitstore`.
func explain(res *jaaru.Result) {
	nb, min, err := res.Bugs[0].Minimize()
	if err != nil {
		fmt.Printf("  minimize: %v\n", err)
		return
	}
	w, err := nb.Witness()
	if err != nil {
		fmt.Printf("  witness: %v\n", err)
		return
	}
	fmt.Printf("  witness: %d decisions (%d before minimization), reproduced=%v\n",
		min.MinimizedLen, min.OriginalLen, w.Reproduced)
	for _, f := range w.Failures {
		fmt.Printf("    power failure injected before op %d\n", f.Op)
	}
	// One resolution per load operation (the witness records every byte;
	// the first byte carries the interesting verdicts here).
	seen := map[int]bool{}
	for _, l := range w.Loads {
		if len(l.Candidates) < 2 || seen[l.Op] {
			continue
		}
		seen[l.Op] = true
		fmt.Printf("    load at %s could read %d stores:\n", l.Loc, len(l.Candidates))
		for _, c := range l.Candidates {
			marker := "   "
			if c.Chosen {
				marker = " > "
			}
			fmt.Printf("    %sval=%#x — %s\n", marker, c.Val, c.Reason)
		}
	}
}

func main() {
	run("addChild-correct", true)
	run("addChild-missing-flush", false)
}
