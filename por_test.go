package jaaru_test

// Equivalence suite for the partial-order-reduction layer: eliding
// single-valued read-from choices and pruning fingerprint-equivalent failure
// scenarios must not change the reachable behaviours or the bugs found. For
// the litmus suite, the example programs and representative RECIPE/PMDK
// workloads (including seeded-bug variants), a default run (POR on) must
// reach the same observation set, the same bug set, the same failure-point
// count and the same logical scenario count as a -por=false reference run —
// serially, with Workers=4, and with the snapshot engine on or off.
//
// Deliberately NOT compared: RFChoicePoints, MaxRFCandidates and per-bug
// Choices vectors — elision removes choice points, so those counters
// legitimately shrink. Scenario counts may shrink too (same-value read-from
// elision removes whole redundant branches; the fingerprint sweep, by
// contrast, preserves logical counts exactly), so the suite asserts
// Scenarios never GROWS under POR, not equality.

import (
	"fmt"
	"sort"
	"testing"

	"jaaru"
	"jaaru/internal/core"
	"jaaru/internal/litmus"
	"jaaru/internal/pmdk"
	"jaaru/internal/recipe"
	"jaaru/internal/yat"
)

// porOff returns opts with the whole POR layer disabled (the reference
// exhaustive run).
func porOff(opts jaaru.Options) jaaru.Options {
	opts.POR = -1
	return opts
}

// bugKeys projects a result's bugs onto their identity keys, sorted: the
// pruning layer must preserve which bugs exist, though scenario elision may
// change per-bug counts and witness choice vectors.
func bugKeys(res *jaaru.Result) []string {
	keys := make([]string, 0, len(res.Bugs))
	for _, b := range res.Bugs {
		keys = append(keys, b.Type.String()+"|"+b.Message)
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertPOREquivalent checks the POR-invariant slice of two results: failure
// points, completeness, the bug key set, and that pruning never invents
// scenarios.
func assertPOREquivalent(t *testing.T, label string, off, on *jaaru.Result) {
	t.Helper()
	if on.Scenarios > off.Scenarios {
		t.Errorf("%s: Scenarios grew under POR: %d off, %d on",
			label, off.Scenarios, on.Scenarios)
	}
	if off.FailurePoints != on.FailurePoints {
		t.Errorf("%s: FailurePoints = %d off, %d on", label, off.FailurePoints, on.FailurePoints)
	}
	if off.Complete != on.Complete {
		t.Errorf("%s: Complete = %v off, %v on", label, off.Complete, on.Complete)
	}
	if ok, on := bugKeys(off), bugKeys(on); !sameKeys(ok, on) {
		t.Errorf("%s: bug sets differ:\n  off: %v\n  on:  %v", label, ok, on)
	}
}

// TestPOREquivalenceLitmus: the entire litmus suite, POR off vs on, results
// and recovery observation sets both. The litmus obs callbacks are
// program-level closures (not checker observers), so the POR layer stays
// fully active here.
func TestPOREquivalenceLitmus(t *testing.T) {
	for _, tst := range litmus.Tests() {
		t.Run(tst.Name, func(t *testing.T) {
			offObs, onObs := newSyncObs(), newSyncObs()
			off := core.New(tst.Prog(offObs.add), porOff(tst.Opts)).Run()
			on := core.New(tst.Prog(onObs.add), tst.Opts).Run()

			assertPOREquivalent(t, tst.Name, off, on)
			if !offObs.equal(onObs) {
				t.Errorf("observation sets differ:\n  off: %v\n  on:  %v",
					offObs.seen, onObs.seen)
			}
		})
	}
}

// TestPOREquivalenceExamples: the commitstore variants and walkv, serial and
// parallel, including the observation-set comparison for walkv's wide
// recovery tree.
func TestPOREquivalenceExamples(t *testing.T) {
	for _, workers := range []int{1, equivalenceWorkers} {
		for _, flushData := range []bool{true, false} {
			name := fmt.Sprintf("commitstore/flush=%v/workers=%d", flushData, workers)
			t.Run(name, func(t *testing.T) {
				opts := jaaru.Options{FlagMultiRF: true, Workers: workers}
				off := jaaru.Check(commitstoreProgram(flushData), porOff(opts))
				on := jaaru.Check(commitstoreProgram(flushData), opts)
				assertPOREquivalent(t, name, off, on)
			})
		}
		t.Run(fmt.Sprintf("walkv/workers=%d", workers), func(t *testing.T) {
			offObs, onObs := newSyncObs(), newSyncObs()
			opts := jaaru.Options{Workers: workers}
			off := jaaru.Check(walkvProgram(offObs.add), porOff(opts))
			on := jaaru.Check(walkvProgram(onObs.add), opts)
			assertPOREquivalent(t, "walkv", off, on)
			if !offObs.equal(onObs) {
				t.Errorf("recovered log states differ:\n  off: %v\n  on:  %v",
					offObs.seen, onObs.seen)
			}
		})
	}
}

// TestPOREquivalenceWorkloads: insert- and update-style RECIPE structures
// and a PMDK example, POR off vs on crossed with snapshots off vs on, serial
// and parallel. The update workloads must actually exercise the pruning
// sweep (ScenariosPruned > 0 in the serial snapshot-on run), or the
// equivalence claim would be vacuous there.
func TestPOREquivalenceWorkloads(t *testing.T) {
	progs := []struct {
		prog   core.Program
		prunes bool // update-style: recurring states the sweep must prune
	}{
		{recipe.CCEHWorkload(6, recipe.CCEHBugs{}), false},
		{recipe.CLHTWorkloadBuckets(4, 8, recipe.CLHTBugs{}), false},
		{pmdk.CTreeWorkload(4, pmdk.CTreeBugs{}), false},
		{recipe.CCEHUpdateWorkload(2, 10), true},
		{recipe.CLHTUpdateWorkload(2, 10), true},
	}
	for _, tc := range progs {
		for _, workers := range []int{1, equivalenceWorkers} {
			for _, snapshots := range []int{0, -1} {
				name := fmt.Sprintf("%s/workers=%d/snapshots=%v",
					tc.prog.Name, workers, snapshots == 0)
				t.Run(name, func(t *testing.T) {
					opts := jaaru.Options{Observe: true, Workers: workers,
						Snapshots: snapshots}
					off := core.New(tc.prog, porOff(opts)).Run()
					on := core.New(tc.prog, opts).Run()

					assertPOREquivalent(t, name, off, on)
					if off.Metrics == nil || on.Metrics == nil {
						t.Fatal("Observe set but Metrics nil")
					}
					if off.Metrics.ScenariosPruned != 0 || off.Metrics.FingerprintHits != 0 {
						t.Errorf("POR disabled yet pruning counters nonzero: pruned=%d hits=%d",
							off.Metrics.ScenariosPruned, off.Metrics.FingerprintHits)
					}
					if tc.prunes && workers == 1 && snapshots == 0 &&
						on.Metrics.ScenariosPruned == 0 {
						t.Error("update workload pruned nothing: suite is vacuous")
					}
				})
			}
		}
	}
}

// TestPOREquivalenceSeededBugs: pruning must not lose bugs. A sample of the
// RECIPE seeded-bug matrix, POR off vs on; the bug key sets must match
// exactly. Infinite-loop cases are deliberately absent: with POR off their
// looping recoveries re-branch on every redundant read-from pick and blow
// the default scenario budget, so the reference run truncates and the
// results are incomparable (that blow-up is the reduction working as
// intended — TestPORFpEligibilityGates and the bench cover it).
func TestPOREquivalenceSeededBugs(t *testing.T) {
	cases := recipe.BugCases()
	sample := []int{1, 2, 3}
	for _, i := range sample {
		if i >= len(cases) {
			continue
		}
		bc := cases[i]
		name := fmt.Sprintf("%s-%d", bc.Benchmark, bc.ID)
		t.Run(name, func(t *testing.T) {
			opts := jaaru.Options{}
			off := core.New(bc.Program(), porOff(opts)).Run()
			on := core.New(bc.Program(), opts).Run()
			assertPOREquivalent(t, name, off, on)
			if len(on.Bugs) == 0 {
				t.Errorf("seeded bug not found with POR on")
			}
		})
	}
}

// porUpdateObsProgram commits one slot then rewrites it in place, reporting
// every recovered value: the crash-time state recurs with period two, so a
// default run exercises the fingerprint sweep while the recovery behaviour
// set stays small enough for the eager explorer to enumerate exhaustively.
func porUpdateObsProgram(rounds int, obs func(string)) jaaru.Program {
	return jaaru.Program{
		Name: "por-update-obs",
		Run: func(c *jaaru.Context) {
			root := c.Root()
			data := c.AllocLine(8)
			c.Store64(data, 7)
			c.Clflush(data, 8)
			c.Sfence()
			c.StorePtr(root, data)
			c.Clflush(root, 8)
			c.Sfence()
			for r := 0; r < rounds; r++ {
				v := uint64(0xA5A5)
				if r%2 == 1 {
					v = 0x5A5A
				}
				c.Store64(data, v)
				c.Clflush(data, 8)
				c.Sfence()
			}
		},
		Recover: func(c *jaaru.Context) {
			p := c.LoadPtr(c.Root())
			if p == 0 {
				obs("empty")
				return
			}
			obs(fmt.Sprintf("v=%#x", c.Load64(p)))
		},
	}
}

// TestPORYatCrossCheck: ground truth per the eager (Yat) exploration — a
// default pruned run must reach exactly the behaviour set the exhaustive
// per-image enumeration reaches, on a workload where the sweep demonstrably
// fires and on walkv's wide recovery tree.
func TestPORYatCrossCheck(t *testing.T) {
	t.Run("update", func(t *testing.T) {
		onObs, eagerObs := newSyncObs(), newSyncObs()
		on := core.New(porUpdateObsProgram(12, onObs.add),
			jaaru.Options{Observe: true}).Run()
		eager, err := yat.Eager(porUpdateObsProgram(12, eagerObs.add),
			jaaru.Options{}, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !onObs.equal(eagerObs) {
			t.Errorf("behaviour sets differ:\n  pruned: %v\n  eager:  %v",
				onObs.seen, eagerObs.seen)
		}
		if len(on.Bugs) != 0 || len(eager.Bugs) != 0 {
			t.Errorf("unexpected bugs: pruned %d, eager %d", len(on.Bugs), len(eager.Bugs))
		}
		if on.FailurePoints != eager.FailurePoints {
			t.Errorf("FailurePoints = %d pruned, %d eager",
				on.FailurePoints, eager.FailurePoints)
		}
		if on.Metrics.ScenariosPruned == 0 {
			t.Error("sweep never fired: cross-check is vacuous")
		}
	})
	t.Run("walkv", func(t *testing.T) {
		onObs, eagerObs := newSyncObs(), newSyncObs()
		on := jaaru.Check(walkvProgram(onObs.add), jaaru.Options{})
		_, err := yat.Eager(walkvProgram(eagerObs.add), jaaru.Options{}, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !onObs.equal(eagerObs) {
			t.Errorf("behaviour sets differ:\n  pruned: %v\n  eager:  %v",
				onObs.seen, eagerObs.seen)
		}
		if len(on.Bugs) != 0 {
			t.Errorf("unexpected bugs: %d", len(on.Bugs))
		}
	})
}

// TestPORReduction: on the update workloads the sweep must deliver at least
// the 5x physical-scenario reduction the change promises, while reporting
// the exact logical scenario count of the reference run.
func TestPORReduction(t *testing.T) {
	for _, prog := range recipe.UpdateWorkloads(1) {
		t.Run(prog.Name, func(t *testing.T) {
			off := core.New(prog, porOff(jaaru.Options{})).Run()
			on := core.New(prog, jaaru.Options{Observe: true}).Run()

			assertPOREquivalent(t, prog.Name, off, on)
			if on.Metrics.FingerprintHits == 0 {
				t.Fatal("no fingerprint hits on an update workload")
			}
			physical := int64(on.Scenarios) - on.Metrics.ScenariosPruned
			if physical <= 0 {
				t.Fatalf("pruned %d of %d scenarios: accounting broken",
					on.Metrics.ScenariosPruned, on.Scenarios)
			}
			if reduction := float64(off.Scenarios) / float64(physical); reduction < 5 {
				t.Errorf("reduction = %.1fx (%d -> %d physical), want >= 5x",
					reduction, off.Scenarios, physical)
			}
		})
	}
}
