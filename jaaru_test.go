package jaaru_test

// Tests of the public API surface: everything a downstream user touches
// must be reachable through the jaaru package alone.

import (
	"strings"
	"testing"

	"jaaru"
)

func TestPublicAPICheck(t *testing.T) {
	prog := jaaru.Program{
		Name: "api",
		Run: func(c *jaaru.Context) {
			data := c.AllocLine(8)
			c.Store64(data, 42)
			c.Clflush(data, 8)
			c.StorePtr(c.Root(), data)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *jaaru.Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				c.Assert(c.Load64(p) == 42, "committed data lost")
			}
		},
	}
	res := jaaru.Check(prog, jaaru.Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	if res.Executions < 2 || res.FailurePoints < 2 || !res.Complete {
		t.Errorf("implausible result: %+v", res)
	}
}

func TestPublicAPIBugDetection(t *testing.T) {
	prog := jaaru.Program{
		Name: "api-bug",
		Run: func(c *jaaru.Context) {
			data := c.AllocLine(8)
			c.Store64(data, 42)
			// BUG: data never flushed before the commit.
			c.StorePtr(c.Root(), data)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *jaaru.Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				c.Assert(c.Load64(p) == 42, "committed data lost")
			}
		},
	}
	res := jaaru.Check(prog, jaaru.Options{FlagMultiRF: true})
	if !res.Buggy() {
		t.Fatal("missing flush not detected through the public API")
	}
	if res.Bugs[0].Type != jaaru.BugAssertion {
		t.Errorf("bug type = %v", res.Bugs[0].Type)
	}
	if len(res.MultiRF) == 0 {
		t.Error("multi-rf debugging support empty")
	}
}

func TestPublicAPIExecute(t *testing.T) {
	res := jaaru.Execute("direct", func(c *jaaru.Context) {
		a := c.Alloc(16, 8)
		c.Store64(a, 1)
		c.Store32(a.Add(8), 2)
		if c.Load64(a) != 1 || c.Load32(a.Add(8)) != 2 {
			c.Bug("lost store")
		}
	}, jaaru.Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	if res.Scenarios != 1 {
		t.Errorf("direct execution ran %d scenarios", res.Scenarios)
	}
}

func TestPublicAPIPerfIssues(t *testing.T) {
	prog := jaaru.Program{
		Name: "api-perf",
		Run: func(c *jaaru.Context) {
			r := c.Root()
			c.Store64(r, 1)
			c.Clflush(r, 8)
			c.Clflush(r, 8)
		},
		Recover: func(c *jaaru.Context) {},
	}
	res := jaaru.Check(prog, jaaru.Options{FlagPerfIssues: true})
	if len(res.PerfIssues) == 0 {
		t.Fatal("redundant flush not reported through the public API")
	}
	if !strings.Contains(res.PerfIssues[0].String(), "redundant") {
		t.Errorf("perf issue string: %q", res.PerfIssues[0])
	}
}

func TestPublicAPIConstants(t *testing.T) {
	if jaaru.CacheLineSize != 64 {
		t.Errorf("CacheLineSize = %d", jaaru.CacheLineSize)
	}
	if jaaru.RootSize < 1024 {
		t.Errorf("RootSize = %d", jaaru.RootSize)
	}
	var a jaaru.Addr = 0x1040
	if a.Line() != 0x1040 || jaaru.Addr(0x1041).Line() != 0x1040 {
		t.Error("Addr.Line broken")
	}
}

func TestPublicAPIThreadsAndChecksums(t *testing.T) {
	res := jaaru.Execute("threads", func(c *jaaru.Context) {
		a := c.Alloc(32, 8)
		h := c.Spawn(func(c *jaaru.Context) {
			c.StoreBytes(a, []byte{1, 2, 3, 4})
		})
		h.Join(c)
		sum := c.Fnv64(a, 4)
		if sum == 0 {
			c.Bug("empty checksum")
		}
		got := c.LoadBytes(a, 4)
		for i, b := range []byte{1, 2, 3, 4} {
			if got[i] != b {
				c.Bug("byte %d = %d", i, got[i])
			}
		}
		c.Memset(a.Add(16), 0xEE, 8)
		if c.Load8(a.Add(20)) != 0xEE {
			c.Bug("memset lost")
		}
	}, jaaru.Options{})
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

func TestPublicAPINewCheckerAndReplay(t *testing.T) {
	prog := jaaru.Program{
		Name: "api-replay",
		Run: func(c *jaaru.Context) {
			d := c.AllocLine(8)
			c.Store64(d, 1)
			c.StorePtr(c.Root(), d)
			c.Clflush(c.Root(), 8)
		},
		Recover: func(c *jaaru.Context) {
			if p := c.LoadPtr(c.Root()); p != 0 {
				c.Assert(c.Load64(p) == 1, "lost")
			}
		},
	}
	res := jaaru.NewChecker(prog, jaaru.Options{}).Run()
	if !res.Buggy() {
		t.Fatal("missing flush not found")
	}
	trace := jaaru.Replay(prog, jaaru.Options{}, res.Bugs[0])
	if len(trace) == 0 {
		t.Fatal("empty replay trace")
	}
	var _ jaaru.TraceOp = trace[0]
}
